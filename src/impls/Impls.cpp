//===--- Impls.cpp - the studied implementations (Table 1) ------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// The algorithm sources below closely follow the published pseudocode:
// msn/ms2 from Michael & Scott (PODC'96) with msn exactly as the paper's
// Fig. 9; lazylist from Heller et al. (OPODIS'05); harris from Harris
// (DISC'01); snark reconstructed from Detlefs et al. (DISC'00) with both
// published bugs intact (see DESIGN.md). Fence placements implement the
// fixes of Sec. 4.2/4.3.
//
//===----------------------------------------------------------------------===//

#include "impls/Impls.h"

#include "obs/Log.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace checkfence;
using namespace checkfence::impls;

const std::vector<ImplInfo> &checkfence::impls::allImpls() {
  static const std::vector<ImplInfo> Impls = {
      {"ms2", "queue",
       "Two-lock queue [33]: linked list with independent head/tail locks"},
      {"msn", "queue",
       "Nonblocking queue [33]: compare-and-swap instead of locks (Fig. 9)"},
      {"lazylist", "set",
       "Lazy list-based set [6,18]: per-node locks, lock-free membership"},
      {"harris", "set",
       "Nonblocking set [16]: sorted list, CAS with marked pointers"},
      {"snark", "deque",
       "Nonblocking deque [8,10]: linked list, double-compare-and-swap"},
      {"treiber", "stack",
       "Treiber lock-free stack (extension beyond Table 1): CAS on top"},
  };
  return Impls;
}

const checkfence::impls::ImplInfo *
checkfence::impls::findImpl(const std::string &Name) {
  for (const ImplInfo &I : allImpls())
    if (I.Name == Name)
      return &I;
  return nullptr;
}

std::string checkfence::impls::preludeSource() {
  return R"CF(
/* ---- CheckFence-C prelude: synchronization primitives ---- */
extern void assert(int expr);
extern void assume(int expr);
extern void fence(char *type);
extern void observe(int v);
extern void commit(); /* commit-point marker (baseline method) */

typedef int lock_t;
extern void spin_lock(lock_t *l);
extern void spin_unlock(lock_t *l);
void lock(lock_t *l) { spin_lock(l); }
void unlock(lock_t *l) { spin_unlock(l); }

/* Compare-and-swap, modeled with an atomic block and no implied fences
   (paper Fig. 6). */
int cas(void *loc, unsigned old, unsigned nw) {
  int r;
  atomic {
    r = (*loc == old);
    if (r)
      *loc = nw;
  }
  return r;
}

/* Double compare-and-swap for the snark deque. */
int dcas(void *a1, void *a2, unsigned o1, unsigned o2,
         unsigned n1, unsigned n2) {
  int r;
  atomic {
    r = (*a1 == o1) && (*a2 == o2);
    if (r) {
      *a1 = n1;
      *a2 = n2;
    }
  }
  return r;
}
)CF";
}

namespace {

const char *Ms2Source = R"CF(
/* ---- ms2: Michael & Scott two-lock queue ---- */
typedef int value_t;
typedef struct node {
  struct node *next;
  value_t value;
} node_t;
typedef struct queue {
  node_t *head;
  node_t *tail;
  lock_t head_lock;
  lock_t tail_lock;
} queue_t;
extern node_t *new_node();
extern void delete_node(node_t *node);

queue_t queue;

void init_queue(void) {
  node_t *node = new_node();
  node->next = 0;
  queue.head = node;
  queue.tail = node;
  queue.head_lock = 0;
  queue.tail_lock = 0;
}

void enqueue(value_t value) {
  node_t *node = new_node();
  node->value = value;
  node->next = 0;
  fence("store-store"); /* publish fields before linking (Sec. 4.3) */
  lock(&queue.tail_lock);
  queue.tail->next = node;
#ifdef COMMIT_POINTS
  commit(); /* linking commits the enqueue */
#endif
  queue.tail = node;
  unlock(&queue.tail_lock);
}

int dequeue(value_t *pvalue) {
  lock(&queue.head_lock);
  node_t *node = queue.head;
  fence("load-load"); /* dependent-load reordering (Sec. 4.3) */
  node_t *new_head = node->next;
  if (new_head == 0) {
#ifdef COMMIT_POINTS
    commit(); /* reading next == 0 commits the empty dequeue */
#endif
    unlock(&queue.head_lock);
    return 0;
  }
  fence("load-load"); /* dependent-load reordering (Sec. 4.3) */
  *pvalue = new_head->value;
  queue.head = new_head;
#ifdef COMMIT_POINTS
  commit(); /* head update commits the dequeue */
#endif
  unlock(&queue.head_lock);
  delete_node(node);
  return 1;
}

/* ---- test wrappers ---- */
void init_op(void) { init_queue(); }
void enqueue_op(value_t v) { enqueue(v); }
value_t dequeue_op(void) {
  value_t v;
  if (dequeue(&v))
    return v;
  return 2; /* EMPTY */
}
)CF";

const char *MsnSource = R"CF(
/* ---- msn: Michael & Scott non-blocking queue (paper Fig. 9) ---- */
typedef int value_t;
typedef struct node {
  struct node *next;
  value_t value;
} node_t;
typedef struct queue {
  node_t *head;
  node_t *tail;
} queue_t;
extern node_t *new_node();
extern void delete_node(node_t *node);

queue_t queue;

void init_queue(void) {
  node_t *node = new_node();
  node->next = 0;
  queue.head = node;
  queue.tail = node;
}

void enqueue(value_t value) {
  node_t *node, *tail, *next;
  node = new_node();
  node->value = value;
  node->next = 0;
  fence("store-store"); /* Fig. 9 line 29 */
  while (1) {
    tail = queue.tail;
    fence("load-load"); /* Fig. 9 line 32 */
    next = tail->next;
    fence("load-load"); /* Fig. 9 line 34 */
    if (tail == queue.tail) {
      if (next == 0) {
        if (cas(&tail->next, (unsigned) next, (unsigned) node)) {
#ifdef COMMIT_POINTS
          commit(); /* successful link CAS commits the enqueue */
#endif
          break;
        }
      } else {
        cas(&queue.tail, (unsigned) tail, (unsigned) next);
      }
    }
  }
  fence("store-store"); /* Fig. 9 line 44 (CAS reordering) */
  cas(&queue.tail, (unsigned) tail, (unsigned) node);
}

int dequeue(value_t *pvalue) {
  node_t *head, *tail, *next;
  while (1) {
    head = queue.head;
    fence("load-load"); /* Fig. 9 line 53 */
    tail = queue.tail;
    fence("load-load"); /* Fig. 9 line 55 */
    next = head->next;
    fence("load-load"); /* Fig. 9 line 57 */
    if (head == queue.head) {
      if (head == tail) {
        if (next == 0) {
#ifdef COMMIT_POINTS
          commit(1); /* the next-load (one access back) commits the empty
                        dequeue; the head re-read sits in between */
#endif
          return 0;
        }
        cas(&queue.tail, (unsigned) tail, (unsigned) next);
      } else {
        *pvalue = next->value;
        if (cas(&queue.head, (unsigned) head, (unsigned) next)) {
#ifdef COMMIT_POINTS
          commit(); /* successful head CAS commits the dequeue */
#endif
          break;
        }
      }
    }
  }
  delete_node(head);
  return 1;
}

/* ---- test wrappers ---- */
void init_op(void) { init_queue(); }
void enqueue_op(value_t v) { enqueue(v); }
value_t dequeue_op(void) {
  value_t v;
  if (dequeue(&v))
    return v;
  return 2; /* EMPTY */
}
)CF";

const char *LazylistSource = R"CF(
/* ---- lazylist: Heller et al. lazy list-based set ----
   Keys: head sentinel 0, elements 1..2 (value v maps to key v+1),
   tail sentinel 3. */
typedef struct entry {
  int key;
  struct entry *next;
  lock_t lck;
  int marked;
} entry_t;
extern entry_t *new_node();
extern void delete_node(entry_t *e);

entry_t *Head;

void init_set(void) {
  entry_t *h = new_node();
  entry_t *t = new_node();
  t->key = 3;
  t->next = 0;
  t->marked = 0;
  t->lck = 0;
  h->key = 0;
  h->next = t;
  h->marked = 0;
  h->lck = 0;
  Head = h;
}

int validate(entry_t *pred, entry_t *curr) {
  return pred->marked == 0 && curr->marked == 0 && pred->next == curr;
}

int add(int k) {
  while (1) {
    entry_t *pred = Head;
    fence("load-load");
    entry_t *curr = pred->next;
    fence("load-load");
    while (curr->key < k) {
      pred = curr;
      curr = curr->next;
      fence("load-load");
    }
    lock(&pred->lck);
    lock(&curr->lck);
    if (validate(pred, curr)) {
      int r;
      if (curr->key == k) {
        r = 0;
      } else {
        entry_t *n = new_node();
        n->key = k;
        n->lck = 0;
        n->next = curr;
#ifndef LAZYLIST_INIT_BUG
        n->marked = 0; /* the initialization missing from the published
                          pseudocode (Sec. 4.1) */
#endif
        fence("store-store"); /* publish fields before linking */
        pred->next = n;
        r = 1;
      }
      unlock(&curr->lck);
      unlock(&pred->lck);
      return r;
    }
    unlock(&curr->lck);
    unlock(&pred->lck);
  }
}

int remove_key(int k) {
  while (1) {
    entry_t *pred = Head;
    fence("load-load");
    entry_t *curr = pred->next;
    fence("load-load");
    while (curr->key < k) {
      pred = curr;
      curr = curr->next;
      fence("load-load");
    }
    lock(&pred->lck);
    lock(&curr->lck);
    if (validate(pred, curr)) {
      int r;
      if (curr->key != k) {
        r = 0;
      } else {
        curr->marked = 1;      /* logical delete */
        fence("store-store");
        pred->next = curr->next; /* physical unlink */
        r = 1;
      }
      unlock(&curr->lck);
      unlock(&pred->lck);
      return r;
    }
    unlock(&curr->lck);
    unlock(&pred->lck);
  }
}

/* Wait-free, lock-free membership test. */
int contains(int k) {
  entry_t *curr = Head;
  fence("load-load");
  while (curr->key < k) {
    curr = curr->next;
    fence("load-load");
  }
  return curr->key == k && curr->marked == 0;
}

/* ---- test wrappers ---- */
void init_op(void) { init_set(); }
int add_op(int v) { return add(v + 1); }
int contains_op(int v) { return contains(v + 1); }
int remove_op(int v) { return remove_key(v + 1); }
)CF";

const char *HarrisSource = R"CF(
/* ---- harris: Harris non-blocking set (DISC'01) ----
   The deleted-bit is packed into the low bit of the next pointer; the
   ptr_mark/ptr_is_marked/ptr_unmark builtins model the packed word.
   Keys: head sentinel 0, elements 1..2, tail sentinel 3. */
typedef struct hnode {
  int key;
  struct hnode *next;
} hnode_t;
extern hnode_t *new_node();
extern hnode_t *ptr_mark(hnode_t *p, int b);
extern int ptr_is_marked(hnode_t *p);
extern hnode_t *ptr_unmark(hnode_t *p);

hnode_t *Head;
hnode_t *Tail;

void init_set(void) {
  hnode_t *h = new_node();
  hnode_t *t = new_node();
  t->key = 3;
  t->next = 0;
  h->key = 0;
  h->next = t;
  fence("store-store");
  Head = h;
  Tail = t;
}

/* Harris's search: *left_node and the returned right node straddle key. */
hnode_t *search(int key, hnode_t **left_node) {
  hnode_t *left_node_next;
  hnode_t *right_node;
  while (1) { /* search_again */
    int retry = 0;
    hnode_t *t = Head;
    fence("load-load");
    hnode_t *t_next = t->next;
    fence("load-load");
    left_node_next = 0;
    /* 1: find left_node and right_node */
    do {
      if (!ptr_is_marked(t_next)) {
        *left_node = t;
        left_node_next = t_next;
      }
      t = ptr_unmark(t_next);
      if (t == Tail)
        break;
      t_next = t->next;
      fence("load-load");
    } while (ptr_is_marked(t_next) || t->key < key);
    right_node = t;
    fence("load-load");
    /* 2: check nodes are adjacent */
    if (left_node_next == right_node) {
      if (right_node != Tail && ptr_is_marked(right_node->next))
        retry = 1; /* goto search_again */
      if (!retry)
        return right_node;
    } else {
      /* 3: remove one or more marked nodes */
      if (cas(&(*left_node)->next, (unsigned) left_node_next,
              (unsigned) right_node)) {
        if (right_node != Tail && ptr_is_marked(right_node->next))
          retry = 1;
        if (!retry)
          return right_node;
      }
    }
  }
}

int add(int key) {
  hnode_t *left;
  while (1) {
    hnode_t *right = search(key, &left);
    if (right != Tail && right->key == key)
      return 0;
    hnode_t *n = new_node();
    n->key = key;
    n->next = right;
    fence("store-store"); /* publish fields before linking */
    if (cas(&left->next, (unsigned) right, (unsigned) n))
      return 1;
  }
}

int remove_key(int key) {
  hnode_t *left;
  while (1) {
    hnode_t *right = search(key, &left);
    if (right == Tail || right->key != key)
      return 0;
    hnode_t *right_next = right->next;
    fence("load-load");
    if (!ptr_is_marked(right_next)) {
      if (cas(&right->next, (unsigned) right_next,
              (unsigned) ptr_mark(right_next, 1))) {
        /* attempt physical removal; search() cleans up on failure */
        if (!cas(&left->next, (unsigned) right, (unsigned) right_next))
          search(key, &left);
        return 1;
      }
    }
  }
}

int contains(int key) {
  hnode_t *left;
  hnode_t *right = search(key, &left);
  return right != Tail && right->key == key;
}

/* ---- test wrappers ---- */
void init_op(void) { init_set(); }
int add_op(int v) { return add(v + 1); }
int contains_op(int v) { return contains(v + 1); }
int remove_op(int v) { return remove_key(v + 1); }
)CF";

const char *SnarkSource = R"CF(
/* ---- snark: DCAS-based non-blocking deque (DISC'00) ----
   Reconstructed from the published pseudocode with both known bugs
   intact (Sec. 4.1 reproduces them on tests D0 and Dq).
   Values: 0/1 payloads, 2 = EMPTY, 9 = scrubbed. */
typedef int value_t;
typedef struct snode {
  struct snode *L;
  struct snode *R;
  value_t V;
} snode_t;
extern snode_t *new_node();

snode_t *Dummy;
snode_t *LeftHat;
snode_t *RightHat;

void init_deque(void) {
  Dummy = new_node();
  Dummy->L = Dummy; /* sentinel self-loops */
  Dummy->R = Dummy;
  Dummy->V = 9;
  LeftHat = Dummy;
  RightHat = Dummy;
}

int pushRight(value_t v) {
  snode_t *nd = new_node();
  nd->R = Dummy;
  nd->V = v;
  fence("store-store"); /* publish fields before linking */
  while (1) {
    snode_t *rh = RightHat;
    fence("load-load");
    snode_t *rhR = rh->R;
    fence("load-load");
    if (rhR == rh) { /* deque empty */
      nd->L = Dummy;
      fence("store-store");
      snode_t *lh = LeftHat;
      if (dcas(&RightHat, &LeftHat, (unsigned) rh, (unsigned) lh,
               (unsigned) nd, (unsigned) nd))
        return 1;
    } else {
      nd->L = rh;
      fence("store-store");
      if (dcas(&RightHat, &rh->R, (unsigned) rh, (unsigned) rhR,
               (unsigned) nd, (unsigned) nd))
        return 1;
    }
  }
}

int pushLeft(value_t v) {
  snode_t *nd = new_node();
  nd->L = Dummy;
  nd->V = v;
  fence("store-store");
  while (1) {
    snode_t *lh = LeftHat;
    fence("load-load");
    snode_t *lhL = lh->L;
    fence("load-load");
    if (lhL == lh) { /* deque empty */
      nd->R = Dummy;
      fence("store-store");
      snode_t *rh = RightHat;
      if (dcas(&LeftHat, &RightHat, (unsigned) lh, (unsigned) rh,
               (unsigned) nd, (unsigned) nd))
        return 1;
    } else {
      nd->R = lh;
      fence("store-store");
      if (dcas(&LeftHat, &lh->L, (unsigned) lh, (unsigned) lhL,
               (unsigned) nd, (unsigned) nd))
        return 1;
    }
  }
}

value_t popRight(void) {
  while (1) {
    snode_t *rh = RightHat;
    fence("load-load");
    snode_t *lh = LeftHat;
    snode_t *rhR = rh->R;
    fence("load-load");
    if (rhR == rh)
      return 2; /* EMPTY */
    if (rh == lh) { /* single element: clear both hats */
      if (dcas(&RightHat, &LeftHat, (unsigned) rh, (unsigned) lh,
               (unsigned) Dummy, (unsigned) Dummy))
        return rh->V;
    } else {
      snode_t *rhL = rh->L;
      fence("load-load");
      if (dcas(&RightHat, &rh->L, (unsigned) rh, (unsigned) rhL,
               (unsigned) rhL, (unsigned) rh)) {
        value_t result = rh->V;
        rh->R = Dummy; /* scrub the popped node */
        rh->V = 9;
        return result;
      }
    }
  }
}

value_t popLeft(void) {
  while (1) {
    snode_t *lh = LeftHat;
    fence("load-load");
    snode_t *rh = RightHat;
    snode_t *lhL = lh->L;
    fence("load-load");
    if (lhL == lh)
      return 2; /* EMPTY */
    if (lh == rh) {
      if (dcas(&LeftHat, &RightHat, (unsigned) lh, (unsigned) rh,
               (unsigned) Dummy, (unsigned) Dummy))
        return lh->V;
    } else {
      snode_t *lhR = lh->R;
      fence("load-load");
      if (dcas(&LeftHat, &lh->R, (unsigned) lh, (unsigned) lhR,
               (unsigned) lhR, (unsigned) lh)) {
        value_t result = lh->V;
        lh->L = Dummy;
        lh->V = 9;
        return result;
      }
    }
  }
}

/* ---- test wrappers ---- */
void init_op(void) { init_deque(); }
void pushleft_op(value_t v) { pushLeft(v); }
void pushright_op(value_t v) { pushRight(v); }
value_t popleft_op(void) { return popLeft(); }
value_t popright_op(void) { return popRight(); }
)CF";

const char *TreiberSource = R"CF(
/* ---- treiber: lock-free stack (extension, not part of Table 1) ----
   The classic single-CAS stack (Treiber, IBM TR RJ5118 1986). It shows
   the same two relaxed-memory failure classes as the paper's algorithms:
   incomplete initialization (the value store may pass the linking CAS)
   and dependent-load reordering (the field loads may pass the top load).
   The fences below are the synthesizer's minimal placement. */
typedef int value_t;
typedef struct node {
  struct node *next;
  value_t value;
} node_t;
extern node_t *new_node();
extern void delete_node(node_t *node);

node_t *top;

void init_stack(void) {
  top = 0;
}

void push(value_t value) {
  node_t *node, *t;
  node = new_node();
  node->value = value;
  while (1) {
    t = top;
    node->next = t;
    fence("store-store"); /* publish value/next before the linking CAS */
    if (cas(&top, (unsigned) t, (unsigned) node)) {
#ifdef COMMIT_POINTS
      commit(); /* successful top CAS commits the push */
#endif
      break;
    }
  }
}

int pop(value_t *pvalue) {
  node_t *t, *next;
  while (1) {
    t = top;
    if (t == 0) {
#ifdef COMMIT_POINTS
      commit(); /* the empty-top load commits the empty pop */
#endif
      return 0;
    }
    fence("load-load"); /* t's fields only after t itself (Sec. 4.3) */
    next = t->next;
    *pvalue = t->value;
    if (cas(&top, (unsigned) t, (unsigned) next)) {
#ifdef COMMIT_POINTS
      commit(); /* successful top CAS commits the pop */
#endif
      break;
    }
  }
  delete_node(t);
  return 1;
}

/* ---- test wrappers ---- */
void init_op(void) { init_stack(); }
void push_op(value_t v) { push(v); }
value_t pop_op(void) {
  value_t v;
  if (pop(&v))
    return v;
  return 2; /* EMPTY */
}
)CF";

const char *RefQueueSource = R"CF(
/* ---- reference queue: sequential circular buffer ---- */
typedef int value_t;
value_t buf[12];
int qhead;
int qtail;

void init_op(void) {
  qhead = 0;
  qtail = 0;
}
void enqueue_op(value_t v) {
  atomic {
    buf[qtail] = v;
    qtail = qtail + 1;
  }
}
value_t dequeue_op(void) {
  value_t r;
  atomic {
    if (qhead == qtail) {
      r = 2; /* EMPTY */
    } else {
      r = buf[qhead];
      qhead = qhead + 1;
    }
  }
  return r;
}
)CF";

const char *RefStackSource = R"CF(
/* ---- reference stack: sequential array stack ---- */
typedef int value_t;
value_t sbuf[12];
int scount;

void init_op(void) {
  scount = 0;
}
void push_op(value_t v) {
  atomic {
    sbuf[scount] = v;
    scount = scount + 1;
  }
}
value_t pop_op(void) {
  value_t r;
  atomic {
    if (scount == 0) {
      r = 2; /* EMPTY */
    } else {
      scount = scount - 1;
      r = sbuf[scount];
    }
  }
  return r;
}
)CF";

const char *RefSetSource = R"CF(
/* ---- reference set: membership flags over the key domain {0,1} ---- */
int present[2];

void init_op(void) {
  present[0] = 0;
  present[1] = 0;
}
int add_op(int v) {
  int r;
  atomic {
    r = (present[v] == 0);
    if (r)
      present[v] = 1;
  }
  return r;
}
int remove_op(int v) {
  int r;
  atomic {
    r = (present[v] == 1);
    if (r)
      present[v] = 0;
  }
  return r;
}
int contains_op(int v) {
  int r;
  atomic { r = (present[v] == 1); }
  return r;
}
)CF";

const char *RefDequeSource = R"CF(
/* ---- reference deque: sequential array double-ended queue ---- */
typedef int value_t;
value_t dbuf[16];
int dleft;  /* index of leftmost element */
int dright; /* index one past the rightmost element */

void init_op(void) {
  dleft = 8;
  dright = 8;
}
void pushleft_op(value_t v) {
  atomic {
    dleft = dleft - 1;
    dbuf[dleft] = v;
  }
}
void pushright_op(value_t v) {
  atomic {
    dbuf[dright] = v;
    dright = dright + 1;
  }
}
value_t popleft_op(void) {
  value_t r;
  atomic {
    if (dleft == dright) {
      r = 2; /* EMPTY */
    } else {
      r = dbuf[dleft];
      dleft = dleft + 1;
    }
  }
  return r;
}
value_t popright_op(void) {
  value_t r;
  atomic {
    if (dleft == dright) {
      r = 2; /* EMPTY */
    } else {
      dright = dright - 1;
      r = dbuf[dright];
    }
  }
  return r;
}
)CF";

} // namespace

std::string checkfence::impls::sourceFor(const std::string &Name) {
  std::string Body;
  if (Name == "ms2")
    Body = Ms2Source;
  else if (Name == "msn")
    Body = MsnSource;
  else if (Name == "lazylist")
    Body = LazylistSource;
  else if (Name == "harris")
    Body = HarrisSource;
  else if (Name == "snark")
    Body = SnarkSource;
  else if (Name == "treiber")
    Body = TreiberSource;
  else {
    obs::logf(obs::LogLevel::Error, "impls", "unknown implementation '%s'",
              Name.c_str());
    std::abort();
  }
  return preludeSource() + Body;
}

std::string checkfence::impls::referenceFor(const std::string &Kind) {
  std::string Body;
  if (Kind == "queue")
    Body = RefQueueSource;
  else if (Kind == "set")
    Body = RefSetSource;
  else if (Kind == "deque")
    Body = RefDequeSource;
  else if (Kind == "stack")
    Body = RefStackSource;
  else {
    obs::logf(obs::LogLevel::Error, "impls", "unknown data-type kind '%s'",
              Kind.c_str());
    std::abort();
  }
  return preludeSource() + Body;
}
