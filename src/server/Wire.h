//===--- Wire.h - JSON wire codecs for the daemon protocol ------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared encode/decode of the checkfenced JSON-RPC payloads. Both ends
/// link the same codecs, so the representation question ("which fields
/// cross the wire, spelled how") lives in exactly one file.
///
/// Requests serialize every public Request field; single-check results
/// serialize every public Result field (the client re-renders locally
/// and is byte-identical to an in-process run). Doubles travel as %.17g
/// so they round-trip exactly.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_SERVER_WIRE_H
#define CHECKFENCE_SERVER_WIRE_H

#include "checkfence/Request.h"
#include "checkfence/Result.h"

#include "support/JsonParse.h"

#include <string>

namespace checkfence {
namespace server {

/// %.17g - the shortest spelling guaranteed to round-trip an IEEE
/// double through text.
std::string wireDouble(double V);

/// The JSON-RPC method implementing \p K ("checkfence.check", ...).
const char *methodForKind(Request::Kind K);

/// Request <-> params object.
std::string encodeRequest(const Request &Req);
bool decodeRequest(const support::JsonValue &V, Request &Out,
                   std::string &Error);

/// Result <-> result object (full field round-trip).
std::string encodeResult(const Result &R);
bool decodeResult(const support::JsonValue &V, Result &Out,
                  std::string &Error);

/// SynthOutcome <-> object (full field round-trip; the rendered JSON
/// report travels separately).
std::string encodeSynthOutcome(const SynthOutcome &S);
bool decodeSynthOutcome(const support::JsonValue &V, SynthOutcome &Out,
                        std::string &Error);

/// WeakestOutcome <-> object.
std::string encodeWeakestOutcome(const WeakestOutcome &W);
bool decodeWeakestOutcome(const support::JsonValue &V, WeakestOutcome &Out,
                          std::string &Error);

/// ExploreDivergence <-> object.
std::string encodeDivergence(const ExploreDivergence &D);
bool decodeDivergence(const support::JsonValue &V, ExploreDivergence &Out);

/// JSON-RPC 2.0 envelopes.
std::string rpcRequest(const std::string &Method,
                       const std::string &ParamsJson, int Id);
std::string rpcResult(const std::string &ResultJson, int Id);
/// rpcResult plus a sibling "trace" member carrying the server-side
/// span array (the X-Checkfence-Trace round-trip; see
/// docs/OBSERVABILITY.md). `TraceEventsJson` is a pre-rendered JSON
/// array (obs::Tracer::eventsJson()).
std::string rpcResultWithTrace(const std::string &ResultJson, int Id,
                               const std::string &TraceEventsJson);
std::string rpcError(int Code, const std::string &Message, int Id);

// JSON-RPC error codes used by the daemon (the -32xxx ones are the
// standard assignments).
constexpr int RpcParseError = -32700;
constexpr int RpcInvalidRequest = -32600;
constexpr int RpcMethodNotFound = -32601;
constexpr int RpcInvalidParams = -32602;
constexpr int RpcQueueFull = -32001;
constexpr int RpcShuttingDown = -32002;

} // namespace server
} // namespace checkfence

#endif // CHECKFENCE_SERVER_WIRE_H
