//===--- Wire.cpp - JSON wire codecs for the daemon protocol ------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "server/Wire.h"

#include "support/Format.h"
#include "support/Json.h"

using namespace checkfence;
using namespace checkfence::server;
using support::JsonArray;
using support::JsonObject;
using support::JsonValue;

namespace {

std::string quotedList(const std::vector<std::string> &Items) {
  JsonArray A;
  for (const std::string &S : Items)
    A.item(support::jsonQuote(S));
  return A.str();
}

void readStringList(const JsonValue &Obj, const char *Key,
                    std::vector<std::string> &Out) {
  const JsonValue *V = Obj.find(Key);
  if (!V || !V->isArray())
    return;
  for (const JsonValue &Item : V->Items)
    Out.push_back(Item.asString());
}

const JsonValue *member(const JsonValue &Obj, const char *Key) {
  return Obj.isObject() ? Obj.find(Key) : nullptr;
}

std::string str(const JsonValue &Obj, const char *Key) {
  const JsonValue *V = member(Obj, Key);
  return V ? V->asString() : std::string();
}

bool boolean(const JsonValue &Obj, const char *Key, bool Default) {
  const JsonValue *V = member(Obj, Key);
  return V ? V->asBool(Default) : Default;
}

int integer(const JsonValue &Obj, const char *Key, int Default = 0) {
  const JsonValue *V = member(Obj, Key);
  return V ? V->asInt(Default) : Default;
}

double dbl(const JsonValue &Obj, const char *Key, double Default = 0) {
  const JsonValue *V = member(Obj, Key);
  return V ? V->asDouble(Default) : Default;
}

std::optional<Status> statusFromName(const std::string &Name) {
  for (Status S : {Status::Pass, Status::Fail, Status::SequentialBug,
                   Status::BoundsExhausted, Status::Error,
                   Status::Cancelled})
    if (Name == statusName(S))
      return S;
  return std::nullopt;
}

const char *kindName(Request::Kind K) {
  switch (K) {
  case Request::Kind::Check:
    return "check";
  case Request::Kind::Matrix:
    return "matrix";
  case Request::Kind::Sweep:
    return "sweep";
  case Request::Kind::WeakestModel:
    return "weakestModel";
  case Request::Kind::Synthesis:
    return "synthesis";
  case Request::Kind::Litmus:
    return "litmus";
  case Request::Kind::Explore:
    return "explore";
  case Request::Kind::Analyze:
    return "analyze";
  }
  return "check";
}

std::string encodeFences(const std::vector<SynthFence> &Fences) {
  JsonArray A;
  for (const SynthFence &F : Fences)
    A.item(JsonObject().field("line", F.Line).field("kind", F.Kind));
  return A.str();
}

void decodeFences(const JsonValue &Obj, const char *Key,
                  std::vector<SynthFence> &Out) {
  const JsonValue *V = member(Obj, Key);
  if (!V || !V->isArray())
    return;
  for (const JsonValue &Item : V->Items)
    Out.push_back({integer(Item, "line"), str(Item, "kind")});
}

} // namespace

std::string checkfence::server::wireDouble(double V) {
  return formatString("%.17g", V);
}

const char *checkfence::server::methodForKind(Request::Kind K) {
  switch (K) {
  case Request::Kind::Check:
    return "checkfence.check";
  case Request::Kind::Matrix:
  case Request::Kind::Sweep:
    return "checkfence.matrix";
  case Request::Kind::WeakestModel:
    return "checkfence.weakestModel";
  case Request::Kind::Synthesis:
    return "checkfence.synthesize";
  case Request::Kind::Litmus:
    return "checkfence.litmus";
  case Request::Kind::Explore:
    return "checkfence.explore";
  case Request::Kind::Analyze:
    return "checkfence.analyze";
  }
  return "checkfence.check";
}

std::string checkfence::server::encodeRequest(const Request &Req) {
  JsonObject O;
  O.field("kind", kindName(Req.RequestKind));
  O.field("impl", Req.ImplName);
  O.field("source", Req.SourceText);
  O.field("label", Req.Label);
  O.field("dataKind", Req.DataKind);
  O.field("test", Req.TestName);
  O.field("notation", Req.Notation);
  O.field("model", Req.ModelName);
  O.raw("impls", quotedList(Req.Impls));
  O.raw("tests", quotedList(Req.Tests));
  O.raw("models", quotedList(Req.Models));
  O.raw("litmusThreads", quotedList(Req.LitmusThreads));
  {
    JsonArray A;
    for (long long V : Req.ExpectedValues)
      A.item(formatString("%lld", V));
    O.raw("expect", A.str());
  }
  O.raw("defines", quotedList(Req.Defines));
  O.field("stripFences", Req.StripAllFences);
  {
    JsonArray A;
    for (int L : Req.StripLines)
      A.item(formatString("%d", L));
    O.raw("stripLines", A.str());
  }
  O.field("refSpec", Req.UseRefSpec);
  if (Req.UseRankOrder)
    O.field("rankOrder", *Req.UseRankOrder);
  if (Req.UseRangeAnalysis)
    O.field("rangeAnalysis", *Req.UseRangeAnalysis);
  if (Req.MaxBoundIterations)
    O.field("maxBoundIterations", *Req.MaxBoundIterations);
  if (Req.MaxProbes)
    O.field("maxProbes", *Req.MaxProbes);
  if (Req.ConflictBudget)
    O.field("conflictBudget", *Req.ConflictBudget);
  O.field("fresh", Req.Fresh);
  O.field("jobs", Req.Jobs);
  O.field("portfolioWidth", Req.PortfolioWidth);
  O.field("fastOracle", Req.UseFastOracle);
  O.raw("deadlineSeconds", wireDouble(Req.DeadlineSeconds));
  O.field("useCache", Req.UseCache);
  O.field("traceFile", Req.TraceFile);
  O.field("synthStrip", Req.SynthStrip);
  if (Req.SynthMinLine)
    O.field("synthMinLine", *Req.SynthMinLine);
  if (Req.SynthMaxFences)
    O.field("synthMaxFences", *Req.SynthMaxFences);
  O.field("synthMinimize", Req.SynthMinimize);
  O.field("exploreSeed", static_cast<unsigned long long>(Req.ExploreSeed));
  O.field("exploreBudget", Req.ExploreBudget);
  O.field("exploreShrink", Req.ExploreShrink);
  O.field("corpusDir", Req.CorpusDir);
  O.field("oracleSamplePeriod", Req.OracleSamplePeriod);
  O.field("symbolicPerMille", Req.SymbolicPerMille);
  return O.str();
}

bool checkfence::server::decodeRequest(const JsonValue &V, Request &Out,
                                       std::string &Error) {
  if (!V.isObject()) {
    Error = "params must be a request object";
    return false;
  }
  std::string Kind = str(V, "kind");
  if (Kind == "check")
    Out.RequestKind = Request::Kind::Check;
  else if (Kind == "matrix")
    Out.RequestKind = Request::Kind::Matrix;
  else if (Kind == "sweep")
    Out.RequestKind = Request::Kind::Sweep;
  else if (Kind == "weakestModel")
    Out.RequestKind = Request::Kind::WeakestModel;
  else if (Kind == "synthesis")
    Out.RequestKind = Request::Kind::Synthesis;
  else if (Kind == "litmus")
    Out.RequestKind = Request::Kind::Litmus;
  else if (Kind == "explore")
    Out.RequestKind = Request::Kind::Explore;
  else if (Kind == "analyze")
    Out.RequestKind = Request::Kind::Analyze;
  else {
    Error = "unknown request kind '" + Kind + "'";
    return false;
  }
  Out.ImplName = str(V, "impl");
  Out.SourceText = str(V, "source");
  Out.Label = str(V, "label");
  Out.DataKind = str(V, "dataKind");
  Out.TestName = str(V, "test");
  Out.Notation = str(V, "notation");
  Out.ModelName = str(V, "model");
  readStringList(V, "impls", Out.Impls);
  readStringList(V, "tests", Out.Tests);
  readStringList(V, "models", Out.Models);
  readStringList(V, "litmusThreads", Out.LitmusThreads);
  if (const JsonValue *A = member(V, "expect"); A && A->isArray())
    for (const JsonValue &Item : A->Items)
      Out.ExpectedValues.push_back(Item.asI64());
  readStringList(V, "defines", Out.Defines);
  Out.StripAllFences = boolean(V, "stripFences", false);
  if (const JsonValue *A = member(V, "stripLines"); A && A->isArray())
    for (const JsonValue &Item : A->Items)
      Out.StripLines.push_back(Item.asInt());
  Out.UseRefSpec = boolean(V, "refSpec", false);
  if (const JsonValue *F = member(V, "rankOrder"))
    Out.UseRankOrder = F->asBool();
  if (const JsonValue *F = member(V, "rangeAnalysis"))
    Out.UseRangeAnalysis = F->asBool();
  if (const JsonValue *F = member(V, "maxBoundIterations"))
    Out.MaxBoundIterations = F->asInt();
  if (const JsonValue *F = member(V, "maxProbes"))
    Out.MaxProbes = F->asInt();
  if (const JsonValue *F = member(V, "conflictBudget"))
    Out.ConflictBudget = F->asI64();
  Out.Fresh = boolean(V, "fresh", false);
  Out.Jobs = integer(V, "jobs");
  Out.PortfolioWidth = integer(V, "portfolioWidth");
  Out.UseFastOracle = boolean(V, "fastOracle", true);
  Out.DeadlineSeconds = dbl(V, "deadlineSeconds");
  Out.UseCache = boolean(V, "useCache", true);
  if (const JsonValue *F = member(V, "traceFile"))
    Out.TraceFile = F->asString();
  Out.SynthStrip = boolean(V, "synthStrip", true);
  if (const JsonValue *F = member(V, "synthMinLine"))
    Out.SynthMinLine = F->asInt();
  if (const JsonValue *F = member(V, "synthMaxFences"))
    Out.SynthMaxFences = F->asInt();
  Out.SynthMinimize = boolean(V, "synthMinimize", true);
  if (const JsonValue *F = member(V, "exploreSeed"))
    Out.ExploreSeed = F->asU64(1);
  Out.ExploreBudget = integer(V, "exploreBudget", 100);
  Out.ExploreShrink = boolean(V, "exploreShrink", true);
  Out.CorpusDir = str(V, "corpusDir");
  Out.OracleSamplePeriod = integer(V, "oracleSamplePeriod", 8);
  Out.SymbolicPerMille = integer(V, "symbolicPerMille", -1);
  return true;
}

std::string checkfence::server::encodeResult(const Result &R) {
  JsonObject O;
  O.field("verdict", statusName(R.Verdict));
  O.field("message", R.Message);
  O.field("impl", R.Impl);
  O.field("test", R.Test);
  O.field("model", R.Model);
  O.raw("observations", quotedList(R.Observations));
  O.field("hasCounterexample", R.HasCounterexample);
  O.field("counterexampleTrace", R.CounterexampleTrace);
  O.field("counterexampleColumns", R.CounterexampleColumns);
  O.field("counterexampleObservation", R.CounterexampleObservation);
  JsonObject S;
  S.field("observationCount", R.Stats.ObservationCount);
  S.field("boundIterations", R.Stats.BoundIterations);
  S.field("unrolledInstrs", R.Stats.UnrolledInstrs);
  S.field("loads", R.Stats.Loads);
  S.field("stores", R.Stats.Stores);
  S.field("satVars", R.Stats.SatVars);
  S.field("satClauses", R.Stats.SatClauses);
  S.raw("encodeSeconds", wireDouble(R.Stats.EncodeSeconds));
  S.raw("solveSeconds", wireDouble(R.Stats.SolveSeconds));
  S.raw("miningSeconds", wireDouble(R.Stats.MiningSeconds));
  S.raw("includeSeconds", wireDouble(R.Stats.IncludeSeconds));
  S.raw("probeSeconds", wireDouble(R.Stats.ProbeSeconds));
  S.raw("totalSeconds", wireDouble(R.Stats.TotalSeconds));
  S.field("learntsExported", R.Stats.LearntsExported);
  S.field("learntsImported", R.Stats.LearntsImported);
  S.field("racesWon", R.Stats.RacesWon);
  S.field("oracleAttempts", R.Stats.OracleAttempts);
  S.field("oracleDischarges", R.Stats.OracleDischarges);
  S.raw("oracleSeconds", wireDouble(R.Stats.OracleSeconds));
  S.field("analysisAttempts", R.Stats.AnalysisAttempts);
  S.field("analysisDischarges", R.Stats.AnalysisDischarges);
  S.raw("analysisSeconds", wireDouble(R.Stats.AnalysisSeconds));
  O.raw("stats", S.str());
  {
    JsonArray A;
    for (const auto &[Loop, Bound] : R.FinalBounds)
      A.item(JsonObject().field("loop", Loop).field("bound", Bound));
    O.raw("finalBounds", A.str());
  }
  O.field("fromCache", R.FromCache);
  return O.str();
}

bool checkfence::server::decodeResult(const JsonValue &V, Result &Out,
                                      std::string &Error) {
  if (!V.isObject()) {
    Error = "result payload must be an object";
    return false;
  }
  auto S = statusFromName(str(V, "verdict"));
  if (!S) {
    Error = "missing or unknown verdict in result payload";
    return false;
  }
  Out.Verdict = *S;
  Out.Message = str(V, "message");
  Out.Impl = str(V, "impl");
  Out.Test = str(V, "test");
  Out.Model = str(V, "model");
  readStringList(V, "observations", Out.Observations);
  Out.HasCounterexample = boolean(V, "hasCounterexample", false);
  Out.CounterexampleTrace = str(V, "counterexampleTrace");
  Out.CounterexampleColumns = str(V, "counterexampleColumns");
  Out.CounterexampleObservation = str(V, "counterexampleObservation");
  if (const JsonValue *St = member(V, "stats"); St && St->isObject()) {
    Out.Stats.ObservationCount = integer(*St, "observationCount");
    Out.Stats.BoundIterations = integer(*St, "boundIterations");
    Out.Stats.UnrolledInstrs = integer(*St, "unrolledInstrs");
    Out.Stats.Loads = integer(*St, "loads");
    Out.Stats.Stores = integer(*St, "stores");
    Out.Stats.SatVars = integer(*St, "satVars");
    if (const JsonValue *F = St->find("satClauses"))
      Out.Stats.SatClauses = F->asU64();
    Out.Stats.EncodeSeconds = dbl(*St, "encodeSeconds");
    Out.Stats.SolveSeconds = dbl(*St, "solveSeconds");
    Out.Stats.MiningSeconds = dbl(*St, "miningSeconds");
    Out.Stats.IncludeSeconds = dbl(*St, "includeSeconds");
    Out.Stats.ProbeSeconds = dbl(*St, "probeSeconds");
    Out.Stats.TotalSeconds = dbl(*St, "totalSeconds");
    if (const JsonValue *F = St->find("learntsExported"))
      Out.Stats.LearntsExported = F->asU64();
    if (const JsonValue *F = St->find("learntsImported"))
      Out.Stats.LearntsImported = F->asU64();
    Out.Stats.RacesWon = integer(*St, "racesWon");
    Out.Stats.OracleAttempts = integer(*St, "oracleAttempts");
    Out.Stats.OracleDischarges = integer(*St, "oracleDischarges");
    Out.Stats.OracleSeconds = dbl(*St, "oracleSeconds");
    Out.Stats.AnalysisAttempts = integer(*St, "analysisAttempts");
    Out.Stats.AnalysisDischarges = integer(*St, "analysisDischarges");
    Out.Stats.AnalysisSeconds = dbl(*St, "analysisSeconds");
  }
  if (const JsonValue *B = member(V, "finalBounds"); B && B->isArray())
    for (const JsonValue &Item : B->Items)
      Out.FinalBounds[str(Item, "loop")] = integer(Item, "bound");
  Out.FromCache = boolean(V, "fromCache", false);
  return true;
}

std::string
checkfence::server::encodeSynthOutcome(const SynthOutcome &S) {
  JsonObject O;
  O.field("success", S.Success);
  O.field("message", S.Message);
  O.field("cancelled", S.Cancelled);
  O.raw("fences", encodeFences(S.Fences));
  O.raw("removed", encodeFences(S.Removed));
  O.field("checksRun", S.ChecksRun);
  O.raw("totalSeconds", wireDouble(S.TotalSeconds));
  O.raw("repairSeconds", wireDouble(S.RepairSeconds));
  O.raw("minimizeSeconds", wireDouble(S.MinimizeSeconds));
  O.raw("log", quotedList(S.Log));
  return O.str();
}

bool checkfence::server::decodeSynthOutcome(const JsonValue &V,
                                            SynthOutcome &Out,
                                            std::string &Error) {
  if (!V.isObject()) {
    Error = "synthesis payload must be an object";
    return false;
  }
  Out.Success = boolean(V, "success", false);
  Out.Message = str(V, "message");
  Out.Cancelled = boolean(V, "cancelled", false);
  decodeFences(V, "fences", Out.Fences);
  decodeFences(V, "removed", Out.Removed);
  Out.ChecksRun = integer(V, "checksRun");
  Out.TotalSeconds = dbl(V, "totalSeconds");
  Out.RepairSeconds = dbl(V, "repairSeconds");
  Out.MinimizeSeconds = dbl(V, "minimizeSeconds");
  readStringList(V, "log", Out.Log);
  return true;
}

std::string
checkfence::server::encodeWeakestOutcome(const WeakestOutcome &W) {
  JsonObject O;
  O.field("ok", W.Ok);
  O.field("error", W.Error);
  O.field("cancelled", W.Cancelled);
  O.field("impl", W.Impl);
  O.field("test", W.Test);
  O.raw("weakest", quotedList(W.Weakest));
  O.field("modelsPassed", W.ModelsPassed);
  O.field("modelsChecked", W.ModelsChecked);
  O.field("cellsRun", W.CellsRun);
  O.field("cellsInferred", W.CellsInferred);
  return O.str();
}

bool checkfence::server::decodeWeakestOutcome(const JsonValue &V,
                                              WeakestOutcome &Out,
                                              std::string &Error) {
  if (!V.isObject()) {
    Error = "weakest-model payload must be an object";
    return false;
  }
  Out.Ok = boolean(V, "ok", false);
  Out.Error = str(V, "error");
  Out.Cancelled = boolean(V, "cancelled", false);
  Out.Impl = str(V, "impl");
  Out.Test = str(V, "test");
  readStringList(V, "weakest", Out.Weakest);
  Out.ModelsPassed = integer(V, "modelsPassed");
  Out.ModelsChecked = integer(V, "modelsChecked");
  Out.CellsRun = integer(V, "cellsRun");
  Out.CellsInferred = integer(V, "cellsInferred");
  return true;
}

std::string
checkfence::server::encodeDivergence(const ExploreDivergence &D) {
  JsonObject O;
  O.field("label", D.Label);
  O.field("kind", D.Kind);
  O.field("model", D.Model);
  O.field("detail", D.Detail);
  O.field("shrunk", D.Shrunk);
  O.field("threads", D.Threads);
  O.field("ops", D.Ops);
  O.field("notation", D.Notation);
  O.field("source", D.Source);
  O.field("reproPath", D.ReproPath);
  return O.str();
}

bool checkfence::server::decodeDivergence(const JsonValue &V,
                                          ExploreDivergence &Out) {
  if (!V.isObject())
    return false;
  Out.Label = str(V, "label");
  Out.Kind = str(V, "kind");
  Out.Model = str(V, "model");
  Out.Detail = str(V, "detail");
  Out.Shrunk = boolean(V, "shrunk", false);
  Out.Threads = integer(V, "threads");
  Out.Ops = integer(V, "ops");
  Out.Notation = str(V, "notation");
  Out.Source = str(V, "source");
  Out.ReproPath = str(V, "reproPath");
  return true;
}

std::string checkfence::server::rpcRequest(const std::string &Method,
                                           const std::string &ParamsJson,
                                           int Id) {
  JsonObject O;
  O.field("jsonrpc", "2.0");
  O.field("id", Id);
  O.field("method", Method);
  O.raw("params", ParamsJson);
  return O.str();
}

std::string checkfence::server::rpcResult(const std::string &ResultJson,
                                          int Id) {
  JsonObject O;
  O.field("jsonrpc", "2.0");
  O.field("id", Id);
  O.raw("result", ResultJson);
  return O.str();
}

std::string checkfence::server::rpcResultWithTrace(
    const std::string &ResultJson, int Id,
    const std::string &TraceEventsJson) {
  JsonObject O;
  O.field("jsonrpc", "2.0");
  O.field("id", Id);
  O.raw("result", ResultJson);
  O.raw("trace", TraceEventsJson);
  return O.str();
}

std::string checkfence::server::rpcError(int Code,
                                         const std::string &Message,
                                         int Id) {
  JsonObject O;
  O.field("jsonrpc", "2.0");
  O.field("id", Id);
  O.raw("error",
        JsonObject().field("code", Code).field("message", Message).str());
  return O.str();
}
