//===--- Server.cpp - the checkfenced daemon core -----------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
//
// Thread architecture:
//
//   listener ---- accepts, spawns one connection thread per socket
//   connection -- parses HTTP + JSON-RPC, enqueues a Job on a shard,
//                 blocks on the job's future, writes the response
//   shard worker (xN) -- pops Jobs by priority, runs them on the
//                 shard's Verifier (one request at a time per shard;
//                 intra-request parallelism comes from JobsPerShard)
//   watcher ----- polls waiting sockets; a client disconnect cancels
//                 the matching request's CancelToken
//
// Admission control happens on the connection thread: when the global
// queued count reaches QueueDepth the request is answered 429 +
// Retry-After without ever touching a shard. A graceful drain stops the
// listener, lets the queues empty (every queued job has a connection
// thread waiting on it), joins everything, and persists the cache.
//
//===----------------------------------------------------------------------===//

#include "checkfence/Server.h"

#include "checkfence/checkfence.h"
#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "server/Http.h"
#include "server/Wire.h"
#include "support/Format.h"
#include "support/Json.h"
#include "support/JsonParse.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <mutex>
#include <thread>
#include <vector>

#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace checkfence;
using namespace checkfence::server;
using support::JsonArray;
using support::JsonObject;
using support::JsonValue;

namespace {

/// Thread-safe progress counters fed by every request's EventSink (the
/// scenarios/cells throughput half of /metrics).
class MetricsSink : public EventSink {
public:
  void onCellFinished(const CellFinishedEvent &) override { ++Cells; }
  void onScenarioChecked(const ScenarioCheckedEvent &) override {
    ++Scenarios;
  }
  std::atomic<unsigned long long> Cells{0};
  std::atomic<unsigned long long> Scenarios{0};
};

/// Polls sockets whose requests are queued or running; a peer that
/// closes (or resets) its connection cancels the matching token, so an
/// abandoned request stops consuming a shard at the next phase boundary.
class DisconnectWatcher {
public:
  void watch(int Fd, CancelToken Token) {
    std::lock_guard<std::mutex> Lock(Mu);
    Watched.push_back({Fd, std::move(Token)});
  }
  void unwatch(int Fd) {
    std::lock_guard<std::mutex> Lock(Mu);
    for (auto It = Watched.begin(); It != Watched.end(); ++It)
      if (It->Fd == Fd) {
        Watched.erase(It);
        return;
      }
  }

  void start() {
    Thread = std::thread([this] { run(); });
  }
  void stop() {
    Stopping.store(true);
    if (Thread.joinable())
      Thread.join();
  }

private:
  struct Entry {
    int Fd;
    CancelToken Token;
  };

  void run() {
    while (!Stopping.load()) {
      std::vector<Entry> Snapshot;
      {
        std::lock_guard<std::mutex> Lock(Mu);
        Snapshot = Watched;
      }
      for (const Entry &E : Snapshot) {
        struct pollfd P;
        P.fd = E.Fd;
        P.events = POLLIN;
        P.revents = 0;
        if (::poll(&P, 1, 0) <= 0)
          continue;
        if (P.revents & (POLLERR | POLLHUP | POLLNVAL)) {
          E.Token.cancel();
          continue;
        }
        if (P.revents & POLLIN) {
          // Readable on a connection that already sent its request
          // means EOF (the protocol is one request per connection);
          // peek to distinguish it from stray bytes.
          char C;
          if (::recv(E.Fd, &C, 1, MSG_PEEK | MSG_DONTWAIT) == 0)
            E.Token.cancel();
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  std::mutex Mu;
  std::vector<Entry> Watched;
  std::atomic<bool> Stopping{false};
  std::thread Thread;
};

/// One queued request: the closure runs on a shard worker and renders
/// the JSON-RPC response body; the connection thread waits on Done.
struct Job {
  int Priority = 1; // 0 high, 1 normal, 2 low
  std::function<std::string()> Run;
  std::promise<std::string> Done;
  /// Short request-kind name ("check", "matrix", ...) for the latency
  /// histogram label and the slow-request log.
  const char *KindName = "?";
  /// Admission time, for the queue-wait histogram.
  std::chrono::steady_clock::time_point EnqueuedAt;
  /// Per-request tracer (X-Checkfence-Trace round-trip); null for the
  /// common untraced case.
  std::shared_ptr<obs::Tracer> Tracer;
  /// Enqueue instant in the tracer's clock, for the queue_wait span.
  uint64_t EnqueueNs = 0;
};

struct Shard {
  std::unique_ptr<Verifier> V;
  std::thread Worker;
  std::mutex Mu;
  std::condition_variable Cv;
  std::deque<std::unique_ptr<Job>> Queues[3];
};

int priorityFromName(const std::string &Name) {
  if (Name == "high")
    return 0;
  if (Name == "low")
    return 2;
  return 1;
}

const char *priorityName(int Priority) {
  switch (Priority) {
  case 0:
    return "high";
  case 2:
    return "low";
  default:
    return "normal";
  }
}

const char *kindShortName(Request::Kind K) {
  switch (K) {
  case Request::Kind::Check:
    return "check";
  case Request::Kind::Matrix:
    return "matrix";
  case Request::Kind::Sweep:
    return "sweep";
  case Request::Kind::WeakestModel:
    return "weakest";
  case Request::Kind::Synthesis:
    return "synth";
  case Request::Kind::Litmus:
    return "litmus";
  case Request::Kind::Explore:
    return "explore";
  case Request::Kind::Analyze:
    return "analyze";
  }
  return "?";
}

} // namespace

//===----------------------------------------------------------------------===//
// CheckServer::Impl
//===----------------------------------------------------------------------===//

struct CheckServer::Impl {
  ServerConfig Cfg;
  SharedResultCache Shared = SharedResultCache::create();
  std::vector<std::unique_ptr<Shard>> Shards;
  MetricsSink Sink;
  DisconnectWatcher Watcher;

  int ListenFd = -1;
  int BoundPort = 0;
  std::thread Listener;

  std::atomic<bool> Started{false};
  std::atomic<bool> Stopping{false};
  /// Set only after every connection thread has exited: a worker must
  /// never quit while a connection could still enqueue, or that job
  /// (and its waiting connection) would hang forever.
  std::atomic<bool> WorkersExit{false};
  std::atomic<bool> Drained{false};

  // Counters (ServerStats). These atomics stay the source of truth for
  // snapshot(); the registry mirrors them at scrape time and owns the
  // series the atomics cannot express (latency/queue-wait histograms).
  std::atomic<unsigned long long> Accepted{0}, Served{0}, Rejected{0},
      Cancelled{0}, Errors{0};
  std::atomic<size_t> Queued{0}, InFlight{0};

  // Metrics registry (one per server instance so parallel in-process
  // servers - the test suites boot several - stay isolated).
  obs::MetricsRegistry Reg;
  obs::Counter *MServed, *MRejected, *MCancelled, *MErrors, *MAccepted;
  obs::Gauge *MQueued, *MInFlight;
  obs::Counter *MCacheHits, *MCacheMisses, *MCacheSeeded;
  obs::Gauge *MCacheEntries, *MSessionsIdle, *MSessionClauses;
  obs::Counter *MCells, *MScenarios;
  obs::HistogramFamily *RequestSeconds;
  obs::HistogramFamily *QueueWaitSeconds;

  Impl() {
    // Registration order is render order; keep it aligned with the
    // pre-registry /metrics layout so existing scrapers stay happy.
    MServed = &Reg.counter("checkfence_requests_served_total",
                           "RPC requests answered");
    MRejected = &Reg.counter("checkfence_requests_rejected_total",
                             "admission rejections (HTTP 429)");
    MCancelled = &Reg.counter("checkfence_requests_cancelled_total",
                              "requests that finished cancelled");
    MErrors = &Reg.counter("checkfence_requests_error_total",
                           "requests that finished in error");
    MAccepted = &Reg.counter("checkfence_connections_accepted_total",
                             "TCP connections accepted");
    MQueued = &Reg.gauge("checkfence_queue_depth",
                         "requests waiting for a shard");
    MInFlight = &Reg.gauge("checkfence_inflight",
                           "requests running on a shard");
    MCacheHits =
        &Reg.counter("checkfence_cache_hits_total", "result cache hits");
    MCacheMisses = &Reg.counter("checkfence_cache_misses_total",
                                "result cache misses");
    MCacheEntries =
        &Reg.gauge("checkfence_cache_entries", "result cache entries");
    MCacheSeeded =
        &Reg.counter("checkfence_cache_bounds_seeded_total",
                     "runs whose bounds were seeded from the cache");
    MSessionsIdle =
        &Reg.gauge("checkfence_sessions_idle",
                   "warm sessions parked in the shard pools");
    MSessionClauses =
        &Reg.gauge("checkfence_session_clauses",
                   "CNF clauses held by idle sessions' solvers");
    MCells = &Reg.counter("checkfence_cells_completed_total",
                          "matrix cells completed");
    MScenarios = &Reg.counter("checkfence_scenarios_checked_total",
                              "explore scenarios checked");
    RequestSeconds = &Reg.histogramFamily(
        "checkfence_request_seconds",
        "request latency on a shard worker, by request kind", "kind",
        obs::latencyBuckets());
    QueueWaitSeconds = &Reg.histogramFamily(
        "checkfence_queue_wait_seconds",
        "time from admission to shard dispatch, by priority class",
        "priority", obs::latencyBuckets());
    // Pre-create the label values so every series renders (as zeros)
    // from the first scrape and the exposition shape is stable.
    for (const char *Kind : {"check", "matrix", "sweep", "weakest",
                             "synth", "litmus", "explore", "analyze"})
      RequestSeconds->withLabel(Kind);
    for (const char *P : {"high", "normal", "low"})
      QueueWaitSeconds->withLabel(P);
  }

  // Connection threads, reaped opportunistically by the listener.
  struct Conn {
    std::thread T;
    std::atomic<bool> Finished{false};
  };
  std::mutex ConnMu;
  std::list<std::unique_ptr<Conn>> Conns;
  std::atomic<size_t> ActiveConns{0};

  ~Impl() = default;

  //===------------------------------------------------------------===//
  // Shard queue
  //===------------------------------------------------------------===//

  size_t shardFor(const Request &Req) const {
    // Warm-session affinity: identical programs land on the same shard,
    // so its Verifier's session pool and bounds seeding stay hot.
    std::string Key = Req.ImplName + '\x1f' + Req.SourceText + '\x1f' +
                      Req.TestName + '\x1f' + Req.Notation;
    for (const std::string &D : Req.Defines)
      Key += '\x1f' + D;
    return std::hash<std::string>{}(Key) % Shards.size();
  }

  /// False when the queue is full (admission rejection).
  bool enqueue(size_t ShardIdx, std::unique_ptr<Job> J) {
    size_t Before = Queued.fetch_add(1);
    if (Before >= static_cast<size_t>(Cfg.QueueDepth)) {
      Queued.fetch_sub(1);
      return false;
    }
    Shard &S = *Shards[ShardIdx];
    {
      std::lock_guard<std::mutex> Lock(S.Mu);
      S.Queues[J->Priority].push_back(std::move(J));
    }
    S.Cv.notify_one();
    return true;
  }

  void workerLoop(Shard &S) {
    while (true) {
      std::unique_ptr<Job> J;
      {
        std::unique_lock<std::mutex> Lock(S.Mu);
        S.Cv.wait(Lock, [&] {
          return WorkersExit.load() || !S.Queues[0].empty() ||
                 !S.Queues[1].empty() || !S.Queues[2].empty();
        });
        for (auto &Q : S.Queues)
          if (!Q.empty()) {
            J = std::move(Q.front());
            Q.pop_front();
            break;
          }
        if (!J) {
          if (WorkersExit.load())
            return; // drained: queues empty and no more arrivals
          continue;
        }
      }
      Queued.fetch_sub(1);
      InFlight.fetch_add(1);
      double Waited = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - J->EnqueuedAt)
                          .count();
      QueueWaitSeconds->withLabel(priorityName(J->Priority))
          .observe(Waited);
      if (J->Tracer)
        J->Tracer->record("server", "queue_wait", J->EnqueueNs,
                          J->Tracer->nowNs());
      std::chrono::steady_clock::time_point RunStart =
          std::chrono::steady_clock::now();
      std::string Payload = J->Run();
      double RunSeconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - RunStart)
                              .count();
      // Observe and log before fulfilling the promise: a client that
      // has received its response is guaranteed to see this request in
      // a subsequent /metrics scrape.
      RequestSeconds->withLabel(J->KindName).observe(RunSeconds);
      obs::logf(obs::LogLevel::Info, "server",
                "%s finished in %.3fs (waited %.3fs, %s priority)",
                J->KindName, RunSeconds, Waited,
                priorityName(J->Priority));
      if (Cfg.SlowRequestSeconds > 0 &&
          RunSeconds > Cfg.SlowRequestSeconds)
        obs::logf(obs::LogLevel::Warn, "server",
                  "slow request: %s took %.3fs (threshold %.3fs)",
                  J->KindName, RunSeconds, Cfg.SlowRequestSeconds);
      InFlight.fetch_sub(1);
      J->Done.set_value(std::move(Payload));
    }
  }

  //===------------------------------------------------------------===//
  // RPC dispatch (runs on a shard worker)
  //===------------------------------------------------------------===//

  std::string runRequest(size_t ShardIdx, Request Req, int Id,
                         CancelToken Token, obs::Tracer *Tracer) {
    Verifier &V = *Shards[ShardIdx]->V;
    std::string Payload;
    bool WasCancelled = false;
    {
    // Install the per-request tracer for this worker; the Verifier's
    // fan-out points propagate it to any threads they spawn. The scope
    // closes the dispatch span before the events are serialized below.
    obs::TraceContext TC(Tracer);
    obs::Span DispatchSpan("server", [&] {
      return std::string("dispatch:") + kindShortName(Req.RequestKind);
    });
    if (DispatchSpan.active())
      DispatchSpan.args(JsonObject()
                            .field("shard", static_cast<int>(ShardIdx))
                            .str());
    switch (Req.RequestKind) {
    case Request::Kind::Check: {
      Result R = V.check(Req, &Sink, Token);
      WasCancelled = R.Verdict == Status::Cancelled;
      if (R.Verdict == Status::Error)
        ++Errors;
      Payload = encodeResult(R);
      break;
    }
    case Request::Kind::Matrix:
    case Request::Kind::Sweep: {
      Report R = V.matrix(Req, &Sink, Token);
      JsonObject O;
      O.field("ok", R.ok());
      O.field("error", R.error());
      if (R.ok()) {
        O.field("table", R.table());
        O.field("json", R.json(true));
        O.field("jsonNoTimings", R.json(false));
        O.field("allCompleted", R.allCompleted());
        O.field("cellCount",
                static_cast<unsigned long long>(R.cellCount()));
        O.field("errorCells", R.count(Status::Error));
        O.field("cancelledCells", R.count(Status::Cancelled));
        WasCancelled = R.count(Status::Cancelled) > 0;
      } else {
        ++Errors;
      }
      Payload = O.str();
      break;
    }
    case Request::Kind::Analyze: {
      AnalysisOutcome A = V.analyze(Req);
      JsonObject O;
      O.field("ok", A.Ok);
      O.field("error", A.Error);
      if (A.Ok) {
        O.field("table", A.table());
        O.field("json", A.json());
      } else {
        ++Errors;
      }
      Payload = O.str();
      break;
    }
    case Request::Kind::Explore: {
      ExploreOutcome E = V.explore(Req, &Sink, Token);
      JsonObject O;
      O.field("ok", E.ok());
      O.field("error", E.error());
      if (E.ok()) {
        O.field("cancelled", E.cancelled());
        O.field("seed", static_cast<unsigned long long>(E.seed()));
        O.field("generated", E.generated());
        O.field("deduplicated", E.deduplicated());
        O.field("run", E.run());
        O.field("skips", E.skips());
        O.field("shrunk", E.shrunk());
        O.raw("wallSeconds", wireDouble(E.wallSeconds()));
        O.field("json", E.json(true));
        O.field("jsonNoTimings", E.json(false));
        {
          JsonArray W;
          for (const std::string &S : E.warnings())
            W.item(support::jsonQuote(S));
          O.raw("warnings", W.str());
        }
        {
          JsonArray D;
          for (const ExploreDivergence &Div : E.divergences())
            D.item(encodeDivergence(Div));
          O.raw("divergences", D.str());
        }
        WasCancelled = E.cancelled();
      } else {
        ++Errors;
      }
      Payload = O.str();
      break;
    }
    case Request::Kind::Synthesis: {
      SynthOutcome S = V.synthesize(Req, &Sink, Token);
      WasCancelled = S.Cancelled;
      JsonObject O;
      O.raw("outcome", encodeSynthOutcome(S));
      O.field("json", S.json());
      Payload = O.str();
      break;
    }
    case Request::Kind::WeakestModel: {
      WeakestOutcome W = V.weakestModels(Req, &Sink, Token);
      WasCancelled = W.Cancelled;
      if (!W.Ok)
        ++Errors;
      Payload = encodeWeakestOutcome(W);
      break;
    }
    case Request::Kind::Litmus: {
      LitmusOutcome L = V.observable(Req);
      if (!L.Ok)
        ++Errors;
      JsonObject O;
      O.field("ok", L.Ok);
      O.field("reachable", L.Reachable);
      O.field("error", L.Error);
      Payload = O.str();
      break;
    }
    }
    }
    if (WasCancelled)
      ++Cancelled;
    ++Served;
    if (Tracer)
      return rpcResultWithTrace(Payload, Id, Tracer->eventsJson());
    return rpcResult(Payload, Id);
  }

  //===------------------------------------------------------------===//
  // HTTP routing (runs on a connection thread)
  //===------------------------------------------------------------===//

  HttpResponse handleRpc(const HttpRequest &Http, int Fd) {
    HttpResponse Resp;
    JsonValue Root;
    std::string ParseError;
    if (!support::parseJson(Http.Body, Root, ParseError) ||
        !Root.isObject()) {
      Resp.StatusCode = 400;
      Resp.Body = rpcError(RpcParseError, ParseError.empty()
                                              ? "body is not an object"
                                              : ParseError,
                           0);
      return Resp;
    }
    const JsonValue *IdV = Root.find("id");
    int Id = IdV ? IdV->asInt() : 0;
    const JsonValue *MethodV = Root.find("method");
    std::string Method = MethodV ? MethodV->asString() : std::string();

    if (Method == "checkfence.version") {
      JsonObject O;
      O.field("version", versionString());
      O.field("schema", JsonSchemaVersion);
      Resp.Body = rpcResult(O.str(), Id);
      ++Served;
      return Resp;
    }

    static const char *Known[] = {
        "checkfence.check",    "checkfence.matrix",
        "checkfence.explore",  "checkfence.analyze",
        "checkfence.synthesize", "checkfence.weakestModel",
        "checkfence.litmus"};
    bool Recognized = false;
    for (const char *K : Known)
      Recognized |= Method == K;
    if (!Recognized) {
      Resp.StatusCode = 404;
      Resp.Body =
          rpcError(RpcMethodNotFound, "unknown method '" + Method + "'",
                   Id);
      return Resp;
    }

    const JsonValue *Params = Root.find("params");
    Request Req;
    std::string DecodeError;
    if (!Params || !decodeRequest(*Params, Req, DecodeError)) {
      Resp.StatusCode = 400;
      Resp.Body = rpcError(RpcInvalidParams,
                           DecodeError.empty() ? "missing params"
                                               : DecodeError,
                           Id);
      return Resp;
    }

    // Server policy overrides. Thread allowance belongs to the daemon
    // (JobsPerShard), not the client; corpus persistence and trace files
    // write to the server's filesystem, so remote requests cannot direct
    // them (traces travel back in the response envelope instead).
    Req.Jobs = 0;
    Req.CorpusDir.clear();
    Req.TraceFile.clear();
    if (Cfg.MaxRequestSeconds > 0 &&
        (Req.DeadlineSeconds <= 0 ||
         Req.DeadlineSeconds > Cfg.MaxRequestSeconds))
      Req.DeadlineSeconds = Cfg.MaxRequestSeconds;

    if (Stopping.load()) {
      Resp.StatusCode = 503;
      Resp.Body = rpcError(RpcShuttingDown, "server is draining", Id);
      return Resp;
    }

    int Priority = 1;
    if (auto It = Http.Headers.find("x-checkfence-priority");
        It != Http.Headers.end())
      Priority = priorityFromName(It->second);

    // An X-Checkfence-Trace header opts this request into server-side
    // span collection: the spans ride back to the client inside the
    // result envelope and are merged into its local timeline.
    std::shared_ptr<obs::Tracer> ReqTracer;
    if (Http.Headers.count("x-checkfence-trace"))
      ReqTracer = std::make_shared<obs::Tracer>();

    CancelToken Token;
    size_t ShardIdx = shardFor(Req);
    const char *Kind = kindShortName(Req.RequestKind);
    auto J = std::make_unique<Job>();
    J->Priority = Priority;
    J->KindName = Kind;
    J->Tracer = ReqTracer;
    J->Run = [this, ShardIdx, Req = std::move(Req), Id, Token,
              ReqTracer] {
      return runRequest(ShardIdx, Req, Id, Token, ReqTracer.get());
    };
    std::future<std::string> Done = J->Done.get_future();
    J->EnqueuedAt = std::chrono::steady_clock::now();
    if (ReqTracer)
      J->EnqueueNs = ReqTracer->nowNs();

    if (!enqueue(ShardIdx, std::move(J))) {
      ++Rejected;
      obs::logf(obs::LogLevel::Warn, "server",
                "queue full, rejecting %s request (depth %d)", Kind,
                Cfg.QueueDepth);
      Resp.StatusCode = 429;
      Resp.Headers["Retry-After"] = "1";
      Resp.Body = rpcError(RpcQueueFull, "request queue is full", Id);
      return Resp;
    }

    // From here the job WILL run (drain finishes queued work); watch
    // the socket so a vanished client cancels it instead.
    Watcher.watch(Fd, Token);
    Resp.Body = Done.get();
    Watcher.unwatch(Fd);
    return Resp;
  }

  /// Mirror the snapshot-derived values into the registry; the
  /// histograms are updated live by the worker loop and need no mirror.
  void syncRegistry(const ServerStats &S) {
    MServed->set(S.Served);
    MRejected->set(S.Rejected);
    MCancelled->set(S.Cancelled);
    MErrors->set(S.Errors);
    MAccepted->set(S.Accepted);
    MQueued->set(static_cast<int64_t>(S.Queued));
    MInFlight->set(static_cast<int64_t>(S.InFlight));
    MCacheHits->set(S.Cache.Hits);
    MCacheMisses->set(S.Cache.Misses);
    MCacheEntries->set(static_cast<int64_t>(S.Cache.Entries));
    MCacheSeeded->set(S.Cache.BoundsSeeded);
    MSessionsIdle->set(static_cast<int64_t>(S.Pool.IdleSessions));
    MSessionClauses->set(static_cast<int64_t>(S.Pool.IdleClauses));
    MCells->set(S.CellsCompleted);
    MScenarios->set(S.ScenariosChecked);
  }

  std::string metricsText() {
    syncRegistry(snapshot());
    return Reg.renderPrometheus();
  }

  std::string statusJson() {
    ServerStats S = snapshot();
    JsonObject Cache;
    Cache.field("entries", static_cast<unsigned long long>(S.Cache.Entries))
        .field("hits", static_cast<unsigned long long>(S.Cache.Hits))
        .field("misses", static_cast<unsigned long long>(S.Cache.Misses))
        .field("boundsSeeded",
               static_cast<unsigned long long>(S.Cache.BoundsSeeded));
    JsonObject Pool;
    Pool.field("idleSessions",
               static_cast<unsigned long long>(S.Pool.IdleSessions))
        .field("idleClauses", S.Pool.IdleClauses);
    JsonObject O;
    O.field("version", versionString());
    O.field("schema", JsonSchemaVersion);
    O.field("shards", Cfg.Shards);
    O.field("jobsPerShard", Cfg.JobsPerShard);
    O.field("queueDepth", Cfg.QueueDepth);
    O.field("queued", static_cast<unsigned long long>(S.Queued));
    O.field("inFlight", static_cast<unsigned long long>(S.InFlight));
    O.field("accepted", S.Accepted);
    O.field("served", S.Served);
    O.field("rejected", S.Rejected);
    O.field("cancelled", S.Cancelled);
    O.field("errors", S.Errors);
    O.field("cellsCompleted", S.CellsCompleted);
    O.field("scenariosChecked", S.ScenariosChecked);
    O.field("draining", Stopping.load());
    O.raw("cache", Cache.str());
    O.raw("pool", Pool.str());
    O.raw("queueWaitSeconds", histogramSummaries(*QueueWaitSeconds));
    O.raw("requestSeconds", histogramSummaries(*RequestSeconds));
    return O.str() + "\n";
  }

  /// One {"count":..,"sumSeconds":..,"p50":..,"p90":..,"p99":..} object
  /// per label that has observations, keyed by label value.
  static std::string histogramSummaries(obs::HistogramFamily &Family) {
    JsonObject Out;
    for (obs::Histogram *H : Family.all()) {
      obs::HistogramSnapshot S = H->snapshot();
      if (S.Count == 0)
        continue;
      JsonObject One;
      One.field("count", static_cast<unsigned long long>(S.Count))
          .fixed("sumSeconds", S.Sum, 6)
          .fixed("p50", S.P50, 6)
          .fixed("p90", S.P90, 6)
          .fixed("p99", S.P99, 6);
      Out.raw(H->labelValue().c_str(), One.str());
    }
    return Out.str();
  }

  ServerStats snapshot() {
    ServerStats S;
    S.Accepted = Accepted.load();
    S.Served = Served.load();
    S.Rejected = Rejected.load();
    S.Cancelled = Cancelled.load();
    S.Errors = Errors.load();
    S.Queued = Queued.load();
    S.InFlight = InFlight.load();
    S.CellsCompleted = Sink.Cells.load();
    S.ScenariosChecked = Sink.Scenarios.load();
    S.Cache = Shared.stats();
    for (const auto &Sh : Shards) {
      PoolStats P = Sh->V->poolStats();
      S.Pool.IdleSessions += P.IdleSessions;
      S.Pool.IdleClauses += P.IdleClauses;
    }
    return S;
  }

  void serveConnection(int Fd) {
    HttpRequest Http;
    std::string Error;
    if (readHttpRequest(Fd, Http, Error)) {
      HttpResponse Resp;
      if (Http.Method == "POST" && Http.Path == "/rpc") {
        Resp = handleRpc(Http, Fd);
      } else if (Http.Method == "GET" && Http.Path == "/metrics") {
        Resp.ContentType = "text/plain; version=0.0.4";
        Resp.Body = metricsText();
      } else if (Http.Method == "GET" && Http.Path == "/status") {
        Resp.Body = statusJson();
      } else if (Http.Path == "/rpc" || Http.Path == "/metrics" ||
                 Http.Path == "/status" ||
                 (Http.Method != "GET" && Http.Method != "POST")) {
        // A known endpoint with the wrong verb (or an unknown verb
        // anywhere) is 405, not 404.
        Resp.StatusCode = 405;
        Resp.ContentType = "text/plain";
        Resp.Body = "method not allowed\n";
      } else {
        Resp.StatusCode = 404;
        Resp.ContentType = "text/plain";
        Resp.Body = "not found (try /rpc, /metrics, /status)\n";
      }
      writeHttpResponse(Fd, Resp);
    }
    ::shutdown(Fd, SHUT_RDWR);
    ::close(Fd);
  }

  void listenerLoop() {
    while (!Stopping.load()) {
      struct pollfd P;
      P.fd = ListenFd;
      P.events = POLLIN;
      P.revents = 0;
      if (::poll(&P, 1, 100) <= 0)
        continue;
      int Fd = ::accept(ListenFd, nullptr, nullptr);
      if (Fd < 0)
        continue;
      ++Accepted;
      reapConnections();
      auto C = std::make_unique<Conn>();
      Conn *Raw = C.get();
      ActiveConns.fetch_add(1);
      Raw->T = std::thread([this, Fd, Raw] {
        serveConnection(Fd);
        Raw->Finished.store(true);
        ActiveConns.fetch_sub(1);
      });
      std::lock_guard<std::mutex> Lock(ConnMu);
      Conns.push_back(std::move(C));
    }
  }

  void reapConnections() {
    std::lock_guard<std::mutex> Lock(ConnMu);
    for (auto It = Conns.begin(); It != Conns.end();)
      if ((*It)->Finished.load()) {
        (*It)->T.join();
        It = Conns.erase(It);
      } else {
        ++It;
      }
  }
};

//===----------------------------------------------------------------------===//
// CheckServer
//===----------------------------------------------------------------------===//

CheckServer::CheckServer(ServerConfig Config)
    : Self(std::make_unique<Impl>()) {
  Self->Cfg = std::move(Config);
  if (Self->Cfg.Shards < 1)
    Self->Cfg.Shards = 1;
  if (Self->Cfg.JobsPerShard < 1)
    Self->Cfg.JobsPerShard = 1;
  if (Self->Cfg.QueueDepth < 1)
    Self->Cfg.QueueDepth = 1;
}

CheckServer::~CheckServer() {
  if (Self->Started.load()) {
    requestStop();
    waitStopped();
  }
}

bool CheckServer::start(std::string &Error) {
  if (!Self->Cfg.LogLevel.empty()) {
    obs::LogLevel Level;
    if (!obs::parseLogLevel(Self->Cfg.LogLevel, Level)) {
      Error = "bad log level '" + Self->Cfg.LogLevel +
              "' (want debug|info|warn|error|off)";
      return false;
    }
    obs::setLogLevel(Level);
  }
  if (!Self->Cfg.CachePath.empty())
    Self->Shared.load(Self->Cfg.CachePath); // absent file: start empty

  for (int I = 0; I < Self->Cfg.Shards; ++I) {
    auto S = std::make_unique<Shard>();
    VerifierConfig VC;
    VC.Jobs = Self->Cfg.JobsPerShard;
    VC.SharedCache = Self->Shared;
    S->V = std::make_unique<Verifier>(VC);
    Self->Shards.push_back(std::move(S));
  }

  Self->ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Self->ListenFd < 0) {
    Error = "cannot create listening socket";
    return false;
  }
  int One = 1;
  ::setsockopt(Self->ListenFd, SOL_SOCKET, SO_REUSEADDR, &One,
               sizeof One);
  struct sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof Addr);
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Self->Cfg.Port));
  if (::inet_pton(AF_INET, Self->Cfg.BindAddress.c_str(),
                  &Addr.sin_addr) != 1) {
    Error = "bad bind address '" + Self->Cfg.BindAddress + "'";
    ::close(Self->ListenFd);
    Self->ListenFd = -1;
    return false;
  }
  if (::bind(Self->ListenFd, reinterpret_cast<struct sockaddr *>(&Addr),
             sizeof Addr) != 0 ||
      ::listen(Self->ListenFd, 64) != 0) {
    Error = formatString("cannot bind %s:%d",
                         Self->Cfg.BindAddress.c_str(), Self->Cfg.Port);
    ::close(Self->ListenFd);
    Self->ListenFd = -1;
    return false;
  }
  socklen_t Len = sizeof Addr;
  ::getsockname(Self->ListenFd,
                reinterpret_cast<struct sockaddr *>(&Addr), &Len);
  Self->BoundPort = ntohs(Addr.sin_port);

  for (auto &S : Self->Shards) {
    Shard *Raw = S.get();
    S->Worker = std::thread([this, Raw] { Self->workerLoop(*Raw); });
  }
  Self->Watcher.start();
  Self->Listener = std::thread([this] { Self->listenerLoop(); });
  Self->Started.store(true);
  obs::logf(obs::LogLevel::Info, "server",
            "listening on %s:%d (%d shards, %d jobs/shard, queue depth %d)",
            Self->Cfg.BindAddress.c_str(), Self->BoundPort,
            Self->Cfg.Shards, Self->Cfg.JobsPerShard, Self->Cfg.QueueDepth);
  return true;
}

int CheckServer::port() const { return Self->BoundPort; }

void CheckServer::requestStop() { Self->Stopping.store(true); }

bool CheckServer::stopRequested() const { return Self->Stopping.load(); }

void CheckServer::waitStopped() {
  if (!Self->Started.load() || Self->Drained.exchange(true))
    return;
  Self->Stopping.store(true);
  obs::logf(obs::LogLevel::Info, "server",
            "draining: %zu queued, %zu in flight",
            Self->Queued.load(), Self->InFlight.load());
  if (Self->Listener.joinable())
    Self->Listener.join();
  // Every live connection either already holds a queued/running job
  // (the workers will finish it) or is about to get a 503; wait for
  // them all to write their responses and exit before letting the
  // workers quit.
  while (Self->ActiveConns.load() > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Self->reapConnections();
  {
    std::lock_guard<std::mutex> Lock(Self->ConnMu);
    for (auto &C : Self->Conns)
      if (C->T.joinable())
        C->T.join();
    Self->Conns.clear();
  }
  Self->WorkersExit.store(true);
  for (auto &S : Self->Shards) {
    S->Cv.notify_all();
    if (S->Worker.joinable())
      S->Worker.join();
  }
  Self->Watcher.stop();
  if (Self->ListenFd >= 0) {
    ::close(Self->ListenFd);
    Self->ListenFd = -1;
  }
  if (!Self->Cfg.CachePath.empty())
    Self->Shared.save(Self->Cfg.CachePath);
  obs::logf(obs::LogLevel::Info, "server",
            "stopped after %llu requests served",
            static_cast<unsigned long long>(Self->Served.load()));
}

ServerStats CheckServer::stats() const { return Self->snapshot(); }
