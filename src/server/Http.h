//===--- Http.h - minimal HTTP/1.1 transport --------------------*- C++ -*-==//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dependency-free HTTP/1.1 slice the checkfenced daemon and the
/// remote client share: blocking POSIX-socket I/O, request/response
/// framing by Content-Length, `Connection: close` semantics (one request
/// per connection - verification requests are long-lived, so connection
/// reuse buys nothing and keeping the framing trivial buys a lot).
///
/// Deliberately not a general HTTP implementation: no chunked encoding,
/// no keep-alive, no TLS, header names case-folded to lowercase on read.
///
//===----------------------------------------------------------------------===//

#ifndef CHECKFENCE_SERVER_HTTP_H
#define CHECKFENCE_SERVER_HTTP_H

#include <map>
#include <string>

namespace checkfence {
namespace server {

/// The port checkfenced listens on by default (and the one URLs without
/// an explicit port resolve to). Kept in sync with ServerConfig::Port.
inline constexpr int ServerDefaultPort = 8417;

/// One parsed request. Header names are lowercased.
struct HttpRequest {
  std::string Method;
  std::string Path;
  std::map<std::string, std::string> Headers;
  std::string Body;
};

/// One response to send. Extra headers are emitted verbatim.
struct HttpResponse {
  int StatusCode = 200;
  std::string ContentType = "application/json";
  std::map<std::string, std::string> Headers;
  std::string Body;
};

/// Reads one request from \p Fd (blocking). False + \p Error on EOF,
/// malformed framing, or a body larger than the (generous) cap.
bool readHttpRequest(int Fd, HttpRequest &Out, std::string &Error);

/// Writes \p R to \p Fd with Content-Length and `Connection: close`.
bool writeHttpResponse(int Fd, const HttpResponse &R);

/// Result of a client-side call. Ok means a well-formed response
/// arrived - inspect StatusCode for the HTTP-level outcome.
struct HttpResult {
  bool Ok = false;
  std::string Error;
  int StatusCode = 0;
  std::map<std::string, std::string> Headers; ///< lowercased names
  std::string Body;
};

/// Splits "http://host:port" (scheme optional, default port 8417).
/// False + \p Error on anything else (https, userinfo, path suffix).
bool parseServerUrl(const std::string &Url, std::string &Host, int &Port,
                    std::string &Error);

/// One blocking request against \p Host:\p Port. \p ExtraHeaders are
/// complete "Name: value" lines without the trailing CRLF.
HttpResult httpRequest(const std::string &Host, int Port,
                       const std::string &Method, const std::string &Path,
                       const std::string &Body,
                       const std::map<std::string, std::string>
                           &ExtraHeaders = {});

} // namespace server
} // namespace checkfence

#endif // CHECKFENCE_SERVER_HTTP_H
