//===--- Remote.cpp - client for a checkfenced daemon -------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "checkfence/Remote.h"

#include "obs/Trace.h"
#include "server/Http.h"
#include "server/Wire.h"
#include "support/Format.h"
#include "support/JsonParse.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <vector>

using namespace checkfence;
using namespace checkfence::server;
using support::JsonValue;

struct RemoteVerifier::Impl {
  std::string Host;
  int Port = 0;
  std::string UrlError; ///< set when the base URL failed to parse
  std::string Priority = "normal";
  int NextId = 1;

  /// One JSON-RPC round trip. On success \p ResultOut points into
  /// \p Doc's "result" member. When \p TraceFile is non-empty (the
  /// request carried traceFile()) and no tracer is already installed,
  /// this call owns one and writes the merged client+server trace file;
  /// under an enclosing tracer the spans land there instead.
  RemoteStatus call(const std::string &Method, const std::string &Params,
                    JsonValue &Doc, const JsonValue *&ResultOut,
                    const std::string &TraceFile = std::string()) {
    std::unique_ptr<obs::Tracer> Owned;
    if (!TraceFile.empty() && !obs::currentTracer())
      Owned = std::make_unique<obs::Tracer>();
    obs::TraceContext Ctx(Owned.get());
    RemoteStatus S = callTraced(Method, Params, Doc, ResultOut);
    if (Owned)
      Owned->writeFile(TraceFile);
    return S;
  }

  RemoteStatus callTraced(const std::string &Method,
                          const std::string &Params, JsonValue &Doc,
                          const JsonValue *&ResultOut) {
    obs::Tracer *T = obs::currentTracer();
    obs::Span RpcSpan("rpc", [&] { return "rpc:" + Method; });
    RemoteStatus S;
    if (!UrlError.empty()) {
      S.Error = UrlError;
      return S;
    }
    int Id = NextId++;
    std::map<std::string, std::string> Headers;
    if (Priority != "normal")
      Headers["X-Checkfence-Priority"] = Priority;
    if (T)
      Headers["X-Checkfence-Trace"] = "1";
    uint64_t SentNs = T ? T->nowNs() : 0;
    HttpResult H = httpRequest(Host, Port, "POST", "/rpc",
                               rpcRequest(Method, Params, Id), Headers);
    if (!H.Ok) {
      S.Error = H.Error;
      return S;
    }
    S.HttpStatus = H.StatusCode;
    if (H.StatusCode == 429) {
      if (auto It = H.Headers.find("retry-after"); It != H.Headers.end())
        S.RetryAfterSeconds = std::atoi(It->second.c_str());
      S.Error = "server busy: request queue is full";
      return S;
    }
    std::string ParseError;
    if (!support::parseJson(H.Body, Doc, ParseError) || !Doc.isObject()) {
      S.Error = "malformed server response: " + ParseError;
      return S;
    }
    mergeServerTrace(T, Doc, SentNs);
    if (const JsonValue *Err = Doc.find("error")) {
      const JsonValue *Msg = Err->isObject() ? Err->find("message")
                                             : nullptr;
      S.Error = Msg ? Msg->asString() : "server error";
      return S;
    }
    ResultOut = Doc.find("result");
    if (!ResultOut || H.StatusCode != 200) {
      S.Error = formatString("unexpected server response (HTTP %d)",
                             H.StatusCode);
      return S;
    }
    S.Ok = true;
    return S;
  }

  /// Imports the envelope's "trace" array (server-side spans) into lane
  /// pid=1, shifting the server timeline so its earliest span lines up
  /// with the moment this client sent the request. The clocks are
  /// unrelated steady clocks, so this alignment is presentational; span
  /// durations are exact.
  static void mergeServerTrace(obs::Tracer *T, const JsonValue &Doc,
                               uint64_t SentNs) {
    if (!T)
      return;
    const JsonValue *Tr = Doc.find("trace");
    if (!Tr)
      return;
    std::vector<obs::TraceEvent> Events;
    if (!obs::Tracer::parseEvents(*Tr, Events) || Events.empty())
      return;
    uint64_t MinStart = Events.front().StartNs;
    for (const obs::TraceEvent &Ev : Events)
      MinStart = std::min(MinStart, Ev.StartNs);
    int64_t ShiftNs =
        static_cast<int64_t>(SentNs) - static_cast<int64_t>(MinStart);
    for (const obs::TraceEvent &Ev : Events)
      T->recordForeign(Ev, /*Pid=*/1, ShiftNs);
  }
};

RemoteVerifier::RemoteVerifier(std::string BaseUrl)
    : Self(std::make_unique<Impl>()) {
  std::string Error;
  if (!parseServerUrl(BaseUrl, Self->Host, Self->Port, Error))
    Self->UrlError = Error;
}

RemoteVerifier::~RemoteVerifier() = default;

void RemoteVerifier::setPriority(std::string Priority) {
  Self->Priority = std::move(Priority);
}

RemoteStatus RemoteVerifier::version(std::string &VersionOut,
                                     int &SchemaOut) {
  JsonValue Doc;
  const JsonValue *R = nullptr;
  RemoteStatus S = Self->call("checkfence.version", "{}", Doc, R);
  if (!S)
    return S;
  if (const JsonValue *V = R->find("version"))
    VersionOut = V->asString();
  if (const JsonValue *V = R->find("schema"))
    SchemaOut = V->asInt();
  return S;
}

RemoteStatus RemoteVerifier::check(const Request &Req, Result &Out) {
  JsonValue Doc;
  const JsonValue *R = nullptr;
  RemoteStatus S =
      Self->call("checkfence.check", encodeRequest(Req), Doc, R,
                 Req.TraceFile);
  if (!S)
    return S;
  std::string Error;
  if (!decodeResult(*R, Out, Error)) {
    S.Ok = false;
    S.Error = Error;
  }
  return S;
}

RemoteStatus RemoteVerifier::matrix(const Request &Req,
                                    RemoteReport &Out) {
  JsonValue Doc;
  const JsonValue *R = nullptr;
  RemoteStatus S =
      Self->call("checkfence.matrix", encodeRequest(Req), Doc, R,
                 Req.TraceFile);
  if (!S)
    return S;
  auto Str = [&](const char *K) {
    const JsonValue *V = R->find(K);
    return V ? V->asString() : std::string();
  };
  const JsonValue *Ok = R->find("ok");
  Out.Ok = Ok && Ok->asBool();
  Out.Error = Str("error");
  Out.Table = Str("table");
  Out.Json = Str("json");
  Out.JsonNoTimings = Str("jsonNoTimings");
  if (const JsonValue *V = R->find("allCompleted"))
    Out.AllCompleted = V->asBool();
  if (const JsonValue *V = R->find("cellCount"))
    Out.CellCount = static_cast<size_t>(V->asU64());
  if (const JsonValue *V = R->find("errorCells"))
    Out.ErrorCells = V->asInt();
  if (const JsonValue *V = R->find("cancelledCells"))
    Out.CancelledCells = V->asInt();
  return S;
}

RemoteStatus RemoteVerifier::analyze(const Request &Req,
                                     RemoteAnalysis &Out) {
  JsonValue Doc;
  const JsonValue *R = nullptr;
  RemoteStatus S =
      Self->call("checkfence.analyze", encodeRequest(Req), Doc, R,
                 Req.TraceFile);
  if (!S)
    return S;
  const JsonValue *Ok = R->find("ok");
  Out.Ok = Ok && Ok->asBool();
  if (const JsonValue *V = R->find("error"))
    Out.Error = V->asString();
  if (const JsonValue *V = R->find("table"))
    Out.Table = V->asString();
  if (const JsonValue *V = R->find("json"))
    Out.Json = V->asString();
  return S;
}

RemoteStatus RemoteVerifier::explore(const Request &Req,
                                     RemoteExplore &Out) {
  JsonValue Doc;
  const JsonValue *R = nullptr;
  RemoteStatus S =
      Self->call("checkfence.explore", encodeRequest(Req), Doc, R,
                 Req.TraceFile);
  if (!S)
    return S;
  auto Str = [&](const char *K) {
    const JsonValue *V = R->find(K);
    return V ? V->asString() : std::string();
  };
  auto Int = [&](const char *K) {
    const JsonValue *V = R->find(K);
    return V ? V->asInt() : 0;
  };
  const JsonValue *Ok = R->find("ok");
  Out.Ok = Ok && Ok->asBool();
  Out.Error = Str("error");
  if (const JsonValue *V = R->find("cancelled"))
    Out.Cancelled = V->asBool();
  if (const JsonValue *V = R->find("seed"))
    Out.Seed = V->asU64();
  Out.Generated = Int("generated");
  Out.Deduplicated = Int("deduplicated");
  Out.Run = Int("run");
  Out.Skips = Int("skips");
  Out.Shrunk = Int("shrunk");
  if (const JsonValue *V = R->find("wallSeconds"))
    Out.WallSeconds = V->asDouble();
  Out.Json = Str("json");
  Out.JsonNoTimings = Str("jsonNoTimings");
  if (const JsonValue *W = R->find("warnings"); W && W->isArray())
    for (const JsonValue &Item : W->Items)
      Out.Warnings.push_back(Item.asString());
  if (const JsonValue *D = R->find("divergences"); D && D->isArray())
    for (const JsonValue &Item : D->Items) {
      ExploreDivergence Div;
      if (decodeDivergence(Item, Div))
        Out.Divergences.push_back(std::move(Div));
    }
  return S;
}

RemoteStatus RemoteVerifier::synthesize(const Request &Req,
                                        RemoteSynth &Out) {
  JsonValue Doc;
  const JsonValue *R = nullptr;
  RemoteStatus S =
      Self->call("checkfence.synthesize", encodeRequest(Req), Doc, R,
                 Req.TraceFile);
  if (!S)
    return S;
  std::string Error;
  const JsonValue *Outcome = R->find("outcome");
  if (!Outcome || !decodeSynthOutcome(*Outcome, Out.Outcome, Error)) {
    S.Ok = false;
    S.Error = Error.empty() ? "missing synthesis outcome" : Error;
    return S;
  }
  if (const JsonValue *V = R->find("json"))
    Out.Json = V->asString();
  return S;
}

RemoteStatus RemoteVerifier::weakestModels(const Request &Req,
                                           WeakestOutcome &Out) {
  JsonValue Doc;
  const JsonValue *R = nullptr;
  RemoteStatus S =
      Self->call("checkfence.weakestModel", encodeRequest(Req), Doc, R,
                 Req.TraceFile);
  if (!S)
    return S;
  std::string Error;
  if (!decodeWeakestOutcome(*R, Out, Error)) {
    S.Ok = false;
    S.Error = Error;
  }
  return S;
}
