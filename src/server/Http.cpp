//===--- Http.cpp - minimal HTTP/1.1 transport --------------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "server/Http.h"

#include "support/Format.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace checkfence;
using namespace checkfence::server;

namespace {

/// Bodies beyond this are refused: requests are JSON-RPC envelopes
/// (source texts included), responses are rendered reports - 64 MiB is
/// far past anything legitimate and bounds a misbehaving peer.
constexpr size_t MaxBodyBytes = 64u << 20;

std::string lowered(std::string S) {
  for (char &C : S)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  return S;
}

std::string trimmed(const std::string &S) {
  size_t B = S.find_first_not_of(" \t");
  if (B == std::string::npos)
    return std::string();
  size_t E = S.find_last_not_of(" \t\r");
  return S.substr(B, E - B + 1);
}

/// Appends data from \p Fd to \p Buf until \p Done says the buffer is
/// complete. False on EOF/error before completion.
template <typename DoneFn>
bool readUntil(int Fd, std::string &Buf, DoneFn Done) {
  char Chunk[16384];
  while (!Done(Buf)) {
    ssize_t N = ::recv(Fd, Chunk, sizeof Chunk, 0);
    if (N <= 0)
      return false;
    Buf.append(Chunk, static_cast<size_t>(N));
    if (Buf.size() > MaxBodyBytes)
      return false;
  }
  return true;
}

/// Parses "NAME: value" header lines from [\p Begin, \p End) of \p Raw.
void parseHeaderLines(const std::string &Raw, size_t Begin, size_t End,
                      std::map<std::string, std::string> &Out) {
  size_t Pos = Begin;
  while (Pos < End) {
    size_t Eol = Raw.find("\r\n", Pos);
    if (Eol == std::string::npos || Eol > End)
      Eol = End;
    std::string Line = Raw.substr(Pos, Eol - Pos);
    Pos = Eol + 2;
    size_t Colon = Line.find(':');
    if (Colon == std::string::npos)
      continue;
    Out[lowered(trimmed(Line.substr(0, Colon)))] =
        trimmed(Line.substr(Colon + 1));
  }
}

bool sendAll(int Fd, const std::string &Data) {
  size_t Sent = 0;
  while (Sent < Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Sent, Data.size() - Sent,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (N <= 0)
      return false;
    Sent += static_cast<size_t>(N);
  }
  return true;
}

const char *reasonPhrase(int Code) {
  switch (Code) {
  case 200:
    return "OK";
  case 400:
    return "Bad Request";
  case 404:
    return "Not Found";
  case 405:
    return "Method Not Allowed";
  case 429:
    return "Too Many Requests";
  case 500:
    return "Internal Server Error";
  case 503:
    return "Service Unavailable";
  default:
    return "Response";
  }
}

/// Reads headers + a Content-Length body from \p Fd. Shared by the
/// server (request) and client (response) paths; \p StartLine receives
/// the first line verbatim.
bool readFramed(int Fd, std::string &StartLine,
                std::map<std::string, std::string> &Headers,
                std::string &Body, std::string &Error) {
  std::string Buf;
  if (!readUntil(Fd, Buf, [](const std::string &B) {
        return B.find("\r\n\r\n") != std::string::npos;
      })) {
    Error = "connection closed before headers completed";
    return false;
  }
  size_t HeaderEnd = Buf.find("\r\n\r\n");
  size_t FirstEol = Buf.find("\r\n");
  StartLine = Buf.substr(0, FirstEol);
  parseHeaderLines(Buf, FirstEol + 2, HeaderEnd, Headers);

  size_t Length = 0;
  auto It = Headers.find("content-length");
  if (It != Headers.end())
    Length = std::strtoull(It->second.c_str(), nullptr, 10);
  if (Length > MaxBodyBytes) {
    Error = "body too large";
    return false;
  }
  size_t BodyStart = HeaderEnd + 4;
  if (!readUntil(Fd, Buf, [&](const std::string &B) {
        return B.size() >= BodyStart + Length;
      })) {
    Error = "connection closed mid-body";
    return false;
  }
  Body = Buf.substr(BodyStart, Length);
  return true;
}

} // namespace

bool checkfence::server::readHttpRequest(int Fd, HttpRequest &Out,
                                         std::string &Error) {
  std::string StartLine;
  if (!readFramed(Fd, StartLine, Out.Headers, Out.Body, Error))
    return false;
  size_t Sp1 = StartLine.find(' ');
  size_t Sp2 = Sp1 == std::string::npos ? std::string::npos
                                        : StartLine.find(' ', Sp1 + 1);
  if (Sp2 == std::string::npos) {
    Error = "malformed request line";
    return false;
  }
  Out.Method = StartLine.substr(0, Sp1);
  Out.Path = StartLine.substr(Sp1 + 1, Sp2 - Sp1 - 1);
  return true;
}

bool checkfence::server::writeHttpResponse(int Fd,
                                           const HttpResponse &R) {
  std::string Out = formatString("HTTP/1.1 %d %s\r\n", R.StatusCode,
                                 reasonPhrase(R.StatusCode));
  Out += "Content-Type: " + R.ContentType + "\r\n";
  Out += formatString("Content-Length: %zu\r\n", R.Body.size());
  for (const auto &[Name, Value] : R.Headers)
    Out += Name + ": " + Value + "\r\n";
  Out += "Connection: close\r\n\r\n";
  Out += R.Body;
  return sendAll(Fd, Out);
}

bool checkfence::server::parseServerUrl(const std::string &Url,
                                        std::string &Host, int &Port,
                                        std::string &Error) {
  std::string Rest = Url;
  if (Rest.rfind("http://", 0) == 0) {
    Rest = Rest.substr(7);
  } else if (Rest.find("://") != std::string::npos) {
    Error = "only http:// URLs are supported";
    return false;
  }
  while (!Rest.empty() && Rest.back() == '/')
    Rest.pop_back();
  if (Rest.find('/') != std::string::npos) {
    Error = "server URLs cannot carry a path";
    return false;
  }
  size_t Colon = Rest.rfind(':');
  if (Colon == std::string::npos) {
    Host = Rest;
    Port = ServerDefaultPort;
  } else {
    Host = Rest.substr(0, Colon);
    Port = std::atoi(Rest.c_str() + Colon + 1);
  }
  if (Host.empty() || Port <= 0 || Port > 65535) {
    Error = "malformed server URL '" + Url + "'";
    return false;
  }
  return true;
}

HttpResult checkfence::server::httpRequest(
    const std::string &Host, int Port, const std::string &Method,
    const std::string &Path, const std::string &Body,
    const std::map<std::string, std::string> &ExtraHeaders) {
  HttpResult R;

  struct addrinfo Hints;
  std::memset(&Hints, 0, sizeof Hints);
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  struct addrinfo *Addrs = nullptr;
  std::string PortStr = formatString("%d", Port);
  if (::getaddrinfo(Host.c_str(), PortStr.c_str(), &Hints, &Addrs) != 0 ||
      !Addrs) {
    R.Error = "cannot resolve host '" + Host + "'";
    return R;
  }
  int Fd = -1;
  for (struct addrinfo *A = Addrs; A; A = A->ai_next) {
    Fd = ::socket(A->ai_family, A->ai_socktype, A->ai_protocol);
    if (Fd < 0)
      continue;
    if (::connect(Fd, A->ai_addr, A->ai_addrlen) == 0)
      break;
    ::close(Fd);
    Fd = -1;
  }
  ::freeaddrinfo(Addrs);
  if (Fd < 0) {
    R.Error = formatString("cannot connect to %s:%d", Host.c_str(), Port);
    return R;
  }

  std::string Msg = Method + " " + Path + " HTTP/1.1\r\n";
  Msg += "Host: " + Host + "\r\n";
  Msg += formatString("Content-Length: %zu\r\n", Body.size());
  Msg += "Content-Type: application/json\r\n";
  for (const auto &[Name, Value] : ExtraHeaders)
    Msg += Name + ": " + Value + "\r\n";
  Msg += "Connection: close\r\n\r\n";
  Msg += Body;
  if (!sendAll(Fd, Msg)) {
    ::close(Fd);
    R.Error = "send failed";
    return R;
  }

  std::string StartLine;
  if (!readFramed(Fd, StartLine, R.Headers, R.Body, R.Error)) {
    ::close(Fd);
    return R;
  }
  ::close(Fd);
  // "HTTP/1.1 200 OK"
  size_t Sp = StartLine.find(' ');
  if (Sp == std::string::npos) {
    R.Error = "malformed status line";
    return R;
  }
  R.StatusCode = std::atoi(StartLine.c_str() + Sp + 1);
  if (R.StatusCode <= 0) {
    R.Error = "malformed status line";
    return R;
  }
  R.Ok = true;
  return R;
}
