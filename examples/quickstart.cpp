//===--- quickstart.cpp - minimal CheckFence usage --------------------------===//
//
// Checks Michael & Scott's non-blocking queue (the paper's Fig. 9, with
// fences) on the smallest symbolic test T0 = (e | d) under the Relaxed
// memory model, then shows what happens when the fences are removed.
//
// Everything goes through the public API: one Verifier, one fluent
// Request per check.
//
// Build & run:  ./examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "checkfence/checkfence.h"

#include <cstdio>

using namespace checkfence;

int main() {
  Verifier V;

  std::printf("CheckFence quickstart: msn (Fig. 9) on T0 = ( e | d )\n\n");

  // 1. With the paper's fences: every relaxed execution is serializable.
  Result R = V.check(Request::check("msn", "T0").model("relaxed"));
  std::printf("with fences, Relaxed:    %s\n", statusName(R.Verdict));
  std::printf("  specification: %d observations, e.g.\n",
              R.Stats.ObservationCount);
  int Shown = 0;
  for (const std::string &O : R.Observations) {
    std::printf("    %s\n", O.c_str());
    if (++Shown == 4)
      break;
  }
  std::printf("  unrolled: %d instrs, %d loads, %d stores; CNF: %d vars, "
              "%llu clauses\n",
              R.Stats.UnrolledInstrs, R.Stats.Loads, R.Stats.Stores,
              R.Stats.SatVars, R.Stats.SatClauses);

  // 2. Without fences: the relaxed model breaks the algorithm.
  Result R2 = V.check(
      Request::check("msn", "T0").model("relaxed").stripFences());
  std::printf("\nwithout fences, Relaxed: %s\n", statusName(R2.Verdict));
  if (R2.HasCounterexample)
    std::printf("\ncounterexample trace:\n%s",
                R2.CounterexampleTrace.c_str());

  // 3. Without fences but sequentially consistent: correct again.
  Result R3 =
      V.check(Request::check("msn", "T0").model("sc").stripFences());
  std::printf("\nwithout fences, SC:      %s\n", statusName(R3.Verdict));
  return 0;
}
