//===--- quickstart.cpp - minimal CheckFence usage --------------------------===//
//
// Checks Michael & Scott's non-blocking queue (the paper's Fig. 9, with
// fences) on the smallest symbolic test T0 = (e | d) under the Relaxed
// memory model, then shows what happens when the fences are removed.
//
// Build & run:  ./examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "harness/Catalog.h"
#include "impls/Impls.h"

#include <cstdio>

using namespace checkfence;
using namespace checkfence::harness;

int main() {
  TestSpec Test = testByName("T0");

  std::printf("CheckFence quickstart: msn (Fig. 9) on T0 = ( e | d )\n\n");

  // 1. With the paper's fences: every relaxed execution is serializable.
  RunOptions Opts;
  Opts.Check.Model = memmodel::ModelParams::relaxed();
  checker::CheckResult R = runTest(impls::sourceFor("msn"), Test, Opts);
  std::printf("with fences, Relaxed:    %s\n",
              checker::checkStatusName(R.Status));
  std::printf("  specification: %d observations, e.g.\n",
              R.Stats.ObservationCount);
  int Shown = 0;
  for (const checker::Observation &O : R.Spec) {
    std::printf("    %s\n", O.str().c_str());
    if (++Shown == 4)
      break;
  }
  std::printf("  unrolled: %d instrs, %d loads, %d stores; CNF: %d vars, "
              "%llu clauses\n",
              R.Stats.Inclusion.UnrolledInstrs, R.Stats.Inclusion.Loads, R.Stats.Inclusion.Stores,
              R.Stats.Inclusion.SatVars,
              static_cast<unsigned long long>(R.Stats.Inclusion.SatClauses));

  // 2. Without fences: the relaxed model breaks the algorithm.
  Opts.StripFences = true;
  checker::CheckResult R2 = runTest(impls::sourceFor("msn"), Test, Opts);
  std::printf("\nwithout fences, Relaxed: %s\n",
              checker::checkStatusName(R2.Status));
  if (R2.Counterexample)
    std::printf("\ncounterexample trace:\n%s",
                R2.Counterexample->str().c_str());

  // 3. Without fences but sequentially consistent: correct again.
  Opts.Check.Model = memmodel::ModelParams::sc();
  checker::CheckResult R3 = runTest(impls::sourceFor("msn"), Test, Opts);
  std::printf("\nwithout fences, SC:      %s\n",
              checker::checkStatusName(R3.Status));
  return 0;
}
