//===--- fence_synthesis.cpp - derive fence placements automatically --------===//
//
// The paper places fences by hand, guided by counterexample traces
// (Sec. 4.2/4.3). This example automates that loop with the FenceSynth
// module: strip every fence from the Michael & Scott non-blocking queue,
// then let the counterexample-guided synthesizer rediscover a sufficient
// and minimal placement for each memory model.
//
// Expected shape of the output:
//   * Relaxed needs store-store fences (publication, CAS ordering) and
//     load-load fences (dependent loads, recheck sequences);
//   * PSO needs only the store-store fences (load order is automatic);
//   * TSO needs no fences at all - the Sec. 4.2 observation that the
//     studied algorithms run unmodified on TSO-like architectures.
//
//===----------------------------------------------------------------------===//

#include "harness/FenceSynth.h"
#include "impls/Impls.h"

#include <cstdio>
#include <sstream>

using namespace checkfence;
using namespace checkfence::harness;

namespace {

/// Source line \p Line of \p Source (1-based), trimmed.
std::string sourceLine(const std::string &Source, int Line) {
  std::istringstream In(Source);
  std::string Text;
  for (int I = 0; I < Line && std::getline(In, Text); ++I)
    ;
  size_t Begin = Text.find_first_not_of(" \t");
  return Begin == std::string::npos ? Text : Text.substr(Begin);
}

} // namespace

int main() {
  std::string Source = impls::sourceFor("msn");
  int PreludeLines = 0;
  for (char C : impls::preludeSource())
    PreludeLines += C == '\n';

  const memmodel::ModelParams Models[] = {memmodel::ModelParams::relaxed(),
                                        memmodel::ModelParams::pso(),
                                        memmodel::ModelParams::tso()};

  for (memmodel::ModelParams Model : Models) {
    std::printf("=== synthesizing fences for msn (T0) on %s ===\n",
                memmodel::modelName(Model).c_str());
    SynthOptions Opts;
    Opts.Check.Model = Model;
    Opts.MinLine = PreludeLines + 1; // fences go in the implementation
    SynthResult R =
        synthesizeFences(Source, {testByName("T0")}, Opts);

    for (const std::string &Step : R.Log)
      std::printf("  %s\n", Step.c_str());
    if (!R.Success) {
      std::printf("  synthesis failed: %s\n\n", R.Message.c_str());
      continue;
    }
    std::printf("  -> %s (%d checks, %.1fs)\n", R.Message.c_str(),
                R.ChecksRun, R.TotalSeconds);
    for (const FencePlacement &P : R.Fences)
      std::printf("     insert %-28s | %s\n", placementStr(P).c_str(),
                  sourceLine(Source, P.Line).c_str());
    std::printf("\n");
  }

  std::printf("The paper's own Fig. 9 placement was verified against the "
              "full Fig. 10 test\nset; placements synthesized from T0 "
              "alone cover the failure classes that\nsmall test "
              "exercises. Pass more tests to synthesizeFences() to "
              "tighten them.\n");
  return 0;
}
