//===--- fence_synthesis.cpp - derive fence placements automatically --------===//
//
// The paper places fences by hand, guided by counterexample traces
// (Sec. 4.2/4.3). This example automates that loop through the public
// API's synthesis requests: strip every fence from the Michael & Scott
// non-blocking queue, then let the counterexample-guided synthesizer
// rediscover a sufficient and minimal placement for each memory model.
//
// Expected shape of the output:
//   * Relaxed needs store-store fences (publication, CAS ordering) and
//     load-load fences (dependent loads, recheck sequences);
//   * PSO needs only the store-store fences (load order is automatic);
//   * TSO needs no fences at all - the Sec. 4.2 observation that the
//     studied algorithms run unmodified on TSO-like architectures.
//
//===----------------------------------------------------------------------===//

#include "checkfence/checkfence.h"

#include <cstdio>
#include <sstream>

using namespace checkfence;

namespace {

/// Source line \p Line of \p Source (1-based), trimmed.
std::string sourceLine(const std::string &Source, int Line) {
  std::istringstream In(Source);
  std::string Text;
  for (int I = 0; I < Line && std::getline(In, Text); ++I)
    ;
  size_t Begin = Text.find_first_not_of(" \t");
  return Begin == std::string::npos ? Text : Text.substr(Begin);
}

} // namespace

int main() {
  Verifier V;
  std::string Source = implementationSource("msn");

  const char *Models[] = {"relaxed", "pso", "tso"};
  for (const char *Model : Models) {
    std::printf("=== synthesizing fences for msn (T0) on %s ===\n",
                Model);
    SynthOutcome R =
        V.synthesize(Request::synthesis("msn", "T0").model(Model));

    for (const std::string &Step : R.Log)
      std::printf("  %s\n", Step.c_str());
    if (!R.Success) {
      std::printf("  synthesis failed: %s\n\n", R.Message.c_str());
      continue;
    }
    std::printf("  -> %s (%d checks, %.1fs)\n", R.Message.c_str(),
                R.ChecksRun, R.TotalSeconds);
    for (const SynthFence &F : R.Fences)
      std::printf("     insert %-11s fence at line %-4d | %s\n",
                  F.Kind.c_str(), F.Line,
                  sourceLine(Source, F.Line).c_str());
    std::printf("\n");
  }

  std::printf("The paper's own Fig. 9 placement was verified against the "
              "full Fig. 10 test\nset; placements synthesized from T0 "
              "alone cover the failure classes that\nsmall test "
              "exercises. Pass more tests (Request::synthesis + tests())"
              "\nto tighten them.\n");
  return 0;
}
