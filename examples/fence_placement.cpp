//===--- fence_placement.cpp - which fences does Fig. 9 need? ---------------===//
//
// Reproduces the Sec. 4.2 workflow: starting from the fully fenced
// non-blocking queue, remove one fence at a time and re-check on small
// tests. A FAIL means that fence is *necessary* for those tests; PASS for
// the full placement shows it is *sufficient*.
//
//===----------------------------------------------------------------------===//

#include "harness/Catalog.h"
#include "impls/Impls.h"

#include <cstdio>
#include <sstream>

using namespace checkfence;
using namespace checkfence::harness;

int main() {
  std::string Source = impls::sourceFor("msn");

  // Locate the fence() calls in the source.
  std::vector<std::pair<int, std::string>> Fences;
  {
    std::istringstream In(Source);
    std::string Line;
    int No = 0;
    while (std::getline(In, Line)) {
      ++No;
      size_t Pos = Line.find("fence(\"");
      if (Pos != std::string::npos && Line.find("/* ----") == std::string::npos)
        Fences.push_back({No, Line.substr(Pos)});
    }
  }
  std::printf("msn contains %zu fences\n\n", Fences.size());

  const char *Tests[] = {"T0", "Ti2"};
  for (const char *TestName : Tests) {
    TestSpec Test = testByName(TestName);
    std::printf("test %s:\n", TestName);

    RunOptions Base;
    Base.Check.Model = memmodel::ModelParams::relaxed();
    checker::CheckResult All = runTest(Source, Test, Base);
    std::printf("  all fences present:  %s (sufficient)\n",
                checker::checkStatusName(All.Status));

    for (const auto &[Line, Text] : Fences) {
      RunOptions Opts = Base;
      Opts.StripFenceLines = {Line};
      checker::CheckResult R = runTest(Source, Test, Opts);
      bool Necessary = R.Status == checker::CheckStatus::Fail;
      std::printf("  without line %3d %-28s %s\n", Line,
                  Text.substr(0, 28).c_str(),
                  Necessary ? "FAIL -> necessary"
                            : "pass (not needed for this test)");
    }
    std::printf("\n");
  }
  std::printf("Fences a small test tolerates may still be required by a "
              "larger one\n(the paper verified necessity against the full "
              "Fig. 10 test set).\n");
  return 0;
}
