//===--- fence_placement.cpp - which fences does Fig. 9 need? ---------------===//
//
// Reproduces the Sec. 4.2 workflow: starting from the fully fenced
// non-blocking queue, remove one fence at a time and re-check on small
// tests. A FAIL means that fence is *necessary* for those tests; PASS for
// the full placement shows it is *sufficient*.
//
//===----------------------------------------------------------------------===//

#include "checkfence/checkfence.h"

#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

using namespace checkfence;

int main() {
  Verifier V;
  std::string Source = implementationSource("msn");

  // Locate the fence() calls in the source.
  std::vector<std::pair<int, std::string>> Fences;
  {
    std::istringstream In(Source);
    std::string Line;
    int No = 0;
    while (std::getline(In, Line)) {
      ++No;
      size_t Pos = Line.find("fence(\"");
      if (Pos != std::string::npos && Line.find("/* ----") == std::string::npos)
        Fences.push_back({No, Line.substr(Pos)});
    }
  }
  std::printf("msn contains %zu fences\n\n", Fences.size());

  const char *Tests[] = {"T0", "Ti2"};
  for (const char *TestName : Tests) {
    std::printf("test %s:\n", TestName);

    Result All =
        V.check(Request::check("msn", TestName).model("relaxed"));
    std::printf("  all fences present:  %s (sufficient)\n",
                statusName(All.Verdict));

    for (const auto &[Line, Text] : Fences) {
      Result R = V.check(Request::check("msn", TestName)
                             .model("relaxed")
                             .stripFenceLine(Line));
      bool Necessary = R.Verdict == Status::Fail;
      std::printf("  without line %3d %-28s %s\n", Line,
                  Text.substr(0, 28).c_str(),
                  Necessary ? "FAIL -> necessary"
                            : "pass (not needed for this test)");
    }
    std::printf("\n");
  }
  std::printf("Fences a small test tolerates may still be required by a "
              "larger one\n(the paper verified necessity against the full "
              "Fig. 10 test set).\n");
  return 0;
}
