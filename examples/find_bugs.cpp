//===--- find_bugs.cpp - reproducing the Sec. 4.1 bug findings --------------===//
//
// 1. The snark DCAS deque's first known bug, found on D0 = (al rr | ar rl):
//    a non-serializable observation under *sequential consistency* (the
//    bug is algorithmic, not memory-model related).
// 2. The lazy list-based set's missing 'marked' initialization: a serial
//    execution reads an undefined field, caught during spec mining.
//
//===----------------------------------------------------------------------===//

#include "harness/Catalog.h"
#include "impls/Impls.h"

#include <cstdio>

using namespace checkfence;
using namespace checkfence::harness;

int main() {
  std::printf("=== snark deque bug (D0, sequential consistency) ===\n");
  RunOptions Opts;
  Opts.Check.Model = memmodel::ModelParams::sc();
  checker::CheckResult R =
      runTest(impls::sourceFor("snark"), testByName("D0"), Opts);
  std::printf("verdict: %s\n", checker::checkStatusName(R.Status));
  if (R.Counterexample) {
    std::printf("%s", R.Counterexample->str().c_str());
    std::printf("\nThe observation is not producible by any atomic "
                "interleaving\nof the four deque operations: the deque "
                "returned a value it\nshould not have.\n");
  }

  std::printf("\n=== lazylist missing initialization (Sac) ===\n");
  RunOptions BugOpts;
  BugOpts.Check.Model = memmodel::ModelParams::sc();
  BugOpts.Defines = {"LAZYLIST_INIT_BUG"}; // published pseudocode variant
  checker::CheckResult R2 =
      runTest(impls::sourceFor("lazylist"), testByName("Sac"), BugOpts);
  std::printf("verdict: %s\n", checker::checkStatusName(R2.Status));
  if (R2.Counterexample) {
    std::printf("%s", R2.Counterexample->str().c_str());
    std::printf("\nThe published pseudocode forgets to initialize the "
                "'marked'\nfield of a new node; contains() then reads an "
                "undefined value.\nWith the missing line restored the same "
                "test passes:\n");
  }
  checker::CheckResult R3 =
      runTest(impls::sourceFor("lazylist"), testByName("Sac"), Opts);
  std::printf("fixed lazylist on Sac: %s\n",
              checker::checkStatusName(R3.Status));
  return 0;
}
