//===--- find_bugs.cpp - reproducing the Sec. 4.1 bug findings --------------===//
//
// 1. The snark DCAS deque's first known bug, found on D0 = (al rr | ar rl):
//    a non-serializable observation under *sequential consistency* (the
//    bug is algorithmic, not memory-model related).
// 2. The lazy list-based set's missing 'marked' initialization: a serial
//    execution reads an undefined field, caught during spec mining.
//
//===----------------------------------------------------------------------===//

#include "checkfence/checkfence.h"

#include <cstdio>

using namespace checkfence;

int main() {
  Verifier V;

  std::printf("=== snark deque bug (D0, sequential consistency) ===\n");
  Result R = V.check(Request::check("snark", "D0").model("sc"));
  std::printf("verdict: %s\n", statusName(R.Verdict));
  if (R.HasCounterexample) {
    std::printf("%s", R.CounterexampleTrace.c_str());
    std::printf("\nThe observation is not producible by any atomic "
                "interleaving\nof the four deque operations: the deque "
                "returned a value it\nshould not have.\n");
  }

  std::printf("\n=== lazylist missing initialization (Sac) ===\n");
  Result R2 = V.check(Request::check("lazylist", "Sac")
                          .model("sc")
                          .define("LAZYLIST_INIT_BUG"));
  std::printf("verdict: %s\n", statusName(R2.Verdict));
  if (R2.HasCounterexample) {
    std::printf("%s", R2.CounterexampleTrace.c_str());
    std::printf("\nThe published pseudocode forgets to initialize the "
                "'marked'\nfield of a new node; contains() then reads an "
                "undefined value.\nWith the missing line restored the same "
                "test passes:\n");
  }
  Result R3 = V.check(Request::check("lazylist", "Sac").model("sc"));
  std::printf("fixed lazylist on Sac: %s\n", statusName(R3.Verdict));
  return 0;
}
