//===--- litmus.cpp - exploring the memory models with litmus tests ---------===//
//
// Demonstrates the Relaxed model of Sec. 2.3 directly: store buffering is
// observable, fences restore order, and the Fig. 2 outcome is impossible
// because Relaxed keeps stores globally ordered.
//
// Litmus queries go through the public API's reachability entry point:
// Request::litmus(source) + thread() per op + the expected observation.
//
//===----------------------------------------------------------------------===//

#include "checkfence/checkfence.h"

#include <cstdio>

using namespace checkfence;

namespace {

const char *answer(Verifier &V, const Request &Req) {
  LitmusOutcome O = V.observable(Req);
  if (!O.Ok) {
    std::printf("query failed: %s\n", O.Error.c_str());
    return "?";
  }
  return O.Reachable ? "reachable" : "impossible";
}

} // namespace

int main() {
  Verifier V;

  const char *Sb = R"(
extern void observe(int v);
extern void fence(char *type);
int x; int y;
void init_op(void) { x = 0; y = 0; }
void t1_op(void) { x = 1; observe(y); }
void t2_op(void) { y = 1; observe(x); }
void f1_op(void) { x = 1; fence("store-load"); observe(y); }
void f2_op(void) { y = 1; fence("store-load"); observe(x); }
)";

  std::printf("store buffering (Dekker), outcome r1 = r2 = 0:\n");
  std::printf("  SC:                      %s\n",
              answer(V, Request::litmus(Sb)
                            .thread("t1_op")
                            .thread("t2_op")
                            .expect({0, 0})
                            .model("sc")));
  std::printf("  Relaxed:                 %s\n",
              answer(V, Request::litmus(Sb)
                            .thread("t1_op")
                            .thread("t2_op")
                            .expect({0, 0})
                            .model("relaxed")));
  std::printf("  Relaxed + sl-fences:     %s\n",
              answer(V, Request::litmus(Sb)
                            .thread("f1_op")
                            .thread("f2_op")
                            .expect({0, 0})
                            .model("relaxed")));

  // Fig. 2: independent reads of independent writes, with ll-fences.
  const char *Iriw = R"(
extern void observe(int v);
extern void fence(char *type);
int x; int y;
void init_op(void) { x = 0; y = 0; }
void w1_op(void) { x = 1; }
void w2_op(void) { y = 1; }
void r1_op(void) { int a = x; fence("load-load"); int b = y;
                   observe(a); observe(b); }
void r2_op(void) { int c = y; fence("load-load"); int d = x;
                   observe(c); observe(d); }
)";
  std::printf("\npaper Fig. 2 (IRIW + load-load fences), readers disagree "
              "on store order:\n");
  LitmusOutcome Fig2 = V.observable(Request::litmus(Iriw)
                                        .thread("w1_op")
                                        .thread("w2_op")
                                        .thread("r1_op")
                                        .thread("r2_op")
                                        .expect({1, 0, 1, 0})
                                        .model("relaxed"));
  std::printf("  Relaxed:                 %s\n",
              !Fig2.Ok ? "?"
              : Fig2.Reachable
                  ? "reachable (NOT expected)"
                  : "impossible (stores are globally ordered)");
  std::printf("\nRelaxed deliberately orders all stores: it soundly covers "
              "TSO/PSO/RMO,\nAlpha and zSeries, but not PowerPC/IA-64 "
              "(paper Sec. 2.3.3).\n");
  return 0;
}
