//===--- litmus.cpp - exploring the memory models with litmus tests ---------===//
//
// Demonstrates the Relaxed model of Sec. 2.3 directly: store buffering is
// observable, fences restore order, and the Fig. 2 outcome is impossible
// because Relaxed keeps stores globally ordered.
//
//===----------------------------------------------------------------------===//

#include "checker/Encoder.h"
#include "frontend/Lowering.h"
#include "harness/TestSpec.h"

#include <cstdio>

using namespace checkfence;
using namespace checkfence::checker;
using namespace checkfence::harness;
using lsl::Value;

namespace {

bool reachable(const std::string &Source,
               const std::vector<std::string> &Ops,
               memmodel::ModelParams Model, const std::vector<Value> &Out) {
  frontend::DiagEngine Diags;
  lsl::Program Prog;
  if (!frontend::compileC(Source, {}, Prog, Diags)) {
    std::printf("compile error:\n%s", Diags.str().c_str());
    return false;
  }
  TestSpec Spec;
  Spec.Name = "litmus";
  for (const std::string &Op : Ops)
    Spec.Threads.push_back({OpSpec{Op, 0, false, false}});
  std::vector<std::string> Threads = buildTestThreads(Prog, Spec);
  ProblemConfig Cfg;
  Cfg.Model = Model;
  EncodedProblem Prob(Prog, Threads, {}, Cfg);
  Observation O;
  O.Values = Out;
  Prob.requireObservation(O);
  return Prob.solve() == sat::SolveResult::Sat;
}

Value IV(int64_t N) { return Value::integer(N); }

} // namespace

int main() {
  const char *Sb = R"(
extern void observe(int v);
extern void fence(char *type);
int x; int y;
void init_op(void) { x = 0; y = 0; }
void t1_op(void) { x = 1; observe(y); }
void t2_op(void) { y = 1; observe(x); }
void f1_op(void) { x = 1; fence("store-load"); observe(y); }
void f2_op(void) { y = 1; fence("store-load"); observe(x); }
)";

  std::printf("store buffering (Dekker), outcome r1 = r2 = 0:\n");
  std::printf("  SC:                      %s\n",
              reachable(Sb, {"t1_op", "t2_op"},
                        memmodel::ModelParams::sc(),
                        {IV(0), IV(0)})
                  ? "reachable"
                  : "impossible");
  std::printf("  Relaxed:                 %s\n",
              reachable(Sb, {"t1_op", "t2_op"},
                        memmodel::ModelParams::relaxed(), {IV(0), IV(0)})
                  ? "reachable"
                  : "impossible");
  std::printf("  Relaxed + sl-fences:     %s\n",
              reachable(Sb, {"f1_op", "f2_op"},
                        memmodel::ModelParams::relaxed(), {IV(0), IV(0)})
                  ? "reachable"
                  : "impossible");

  // Fig. 2: independent reads of independent writes, with ll-fences.
  const char *Iriw = R"(
extern void observe(int v);
extern void fence(char *type);
int x; int y;
void init_op(void) { x = 0; y = 0; }
void w1_op(void) { x = 1; }
void w2_op(void) { y = 1; }
void r1_op(void) { int a = x; fence("load-load"); int b = y;
                   observe(a); observe(b); }
void r2_op(void) { int c = y; fence("load-load"); int d = x;
                   observe(c); observe(d); }
)";
  std::printf("\npaper Fig. 2 (IRIW + load-load fences), readers disagree "
              "on store order:\n");
  std::printf("  Relaxed:                 %s\n",
              reachable(Iriw, {"w1_op", "w2_op", "r1_op", "r2_op"},
                        memmodel::ModelParams::relaxed(),
                        {IV(1), IV(0), IV(1), IV(0)})
                  ? "reachable (NOT expected)"
                  : "impossible (stores are globally ordered)");
  std::printf("\nRelaxed deliberately orders all stores: it soundly covers "
              "TSO/PSO/RMO,\nAlpha and zSeries, but not PowerPC/IA-64 "
              "(paper Sec. 2.3.3).\n");
  return 0;
}
