//===--- custom_type.cpp - checking your own data type ----------------------===//
//
// The workflow a library user follows to verify their own concurrent data
// type, end to end:
//
//   1. write the implementation in CheckFence-C (here: a Treiber stack,
//      deliberately without any memory-ordering fences),
//   2. write a symbolic test in the Fig. 8 notation ("u ( uo | ou )"),
//   3. check it on the strong and relaxed models,
//   4. read the counterexample trace,
//   5. let the synthesizer propose fences, and re-check.
//
// Everything happens through include/checkfence/checkfence.h; the
// Verifier prepends the shared prelude (cas/dcas/locks) to user sources
// automatically.
//
//===----------------------------------------------------------------------===//

#include "checkfence/checkfence.h"

#include <cstdio>

using namespace checkfence;

namespace {

// Step 1: the user's implementation. `new_node`, `cas`, `fence`, `atomic`
// and the *_op test wrappers are the CheckFence-C interface; the shared
// prelude supplies cas/locks.
const char *UserStack = R"(
typedef int value_t;
typedef struct node {
  struct node *next;
  value_t value;
} node_t;
extern node_t *new_node();

node_t *top;

void init_op(void) { top = 0; }

void push_op(value_t value) {
  node_t *node, *t;
  node = new_node();
  node->value = value;
  while (1) {
    t = top;
    node->next = t;
    if (cas(&top, (unsigned) t, (unsigned) node))
      break;
  }
}

value_t pop_op(void) {
  node_t *t, *next;
  while (1) {
    t = top;
    if (t == 0)
      return 2; /* EMPTY */
    next = t->next;
    if (cas(&top, (unsigned) t, (unsigned) next))
      return t->value;
  }
}
)";

void report(const char *What, const Result &R) {
  std::printf("  %-28s %s\n", What, statusName(R.Verdict));
  if (R.HasCounterexample) {
    std::printf("--- counterexample ---\n%s----------------------\n",
                R.CounterexampleTrace.c_str());
  }
}

/// The test used throughout: one seeded push, then push/pop against
/// pop/push, arguments drawn from {0,1}.
Request userCase() {
  return Request::check()
      .source(UserStack)
      .label("user-stack")
      .dataType("stack")
      .notation("u ( uo | ou )");
}

} // namespace

int main() {
  Verifier V;

  // Steps 2+3: check on both ends of the model spectrum.
  std::printf("unfenced user stack, test u ( uo | ou ):\n");
  report("sequential consistency:", V.check(userCase().model("sc")));

  // Step 4: the trace shows the stale read.
  report("relaxed:", V.check(userCase().model("relaxed")));

  // Step 5: synthesize the missing fences and re-check.
  std::printf("\nsynthesizing fences on relaxed...\n");
  Request Synth = userCase().model("relaxed");
  Synth.RequestKind = Request::Kind::Synthesis;
  SynthOutcome S = V.synthesize(Synth);
  if (!S.Success) {
    std::printf("  synthesis failed: %s\n", S.Message.c_str());
    return 1;
  }
  for (const std::string &Step : S.Log)
    std::printf("  %s\n", Step.c_str());
  for (const SynthFence &F : S.Fences)
    std::printf("  -> insert fence(\"%s\") before line %d\n",
                F.Kind.c_str(), F.Line);

  std::printf("\nDone: the placement above makes the test pass on "
              "Relaxed; the repository's\n'treiber' implementation ships "
              "these fences (see implementationSource(\"treiber\")).\n");
  return 0;
}
