//===--- custom_type.cpp - checking your own data type ----------------------===//
//
// The workflow a library user follows to verify their own concurrent data
// type, end to end:
//
//   1. write the implementation in CheckFence-C (here: a Treiber stack,
//      deliberately without any memory-ordering fences),
//   2. write a symbolic test in the Fig. 8 notation ("u ( uo | ou )"),
//   3. check it on the strong and relaxed models,
//   4. read the counterexample trace,
//   5. let the synthesizer propose fences, and re-check.
//
// Everything happens through the public headers; no repository-internal
// sources are involved.
//
//===----------------------------------------------------------------------===//

#include "harness/FenceSynth.h"
#include "impls/Impls.h"

#include <cstdio>

using namespace checkfence;
using namespace checkfence::harness;

namespace {

// Step 1: the user's implementation. `new_node`, `cas`, `fence`, `atomic`
// and the *_op test wrappers are the CheckFence-C interface; the prelude
// (impls::preludeSource) supplies cas/locks.
const char *UserStack = R"(
typedef int value_t;
typedef struct node {
  struct node *next;
  value_t value;
} node_t;
extern node_t *new_node();

node_t *top;

void init_op(void) { top = 0; }

void push_op(value_t value) {
  node_t *node, *t;
  node = new_node();
  node->value = value;
  while (1) {
    t = top;
    node->next = t;
    if (cas(&top, (unsigned) t, (unsigned) node))
      break;
  }
}

value_t pop_op(void) {
  node_t *t, *next;
  while (1) {
    t = top;
    if (t == 0)
      return 2; /* EMPTY */
    next = t->next;
    if (cas(&top, (unsigned) t, (unsigned) next))
      return t->value;
  }
}
)";

void report(const char *What, const checker::CheckResult &R) {
  std::printf("  %-28s %s\n", What, checker::checkStatusName(R.Status));
  if (R.Counterexample) {
    std::printf("--- counterexample ---\n%s----------------------\n",
                R.Counterexample->str().c_str());
  }
}

} // namespace

int main() {
  std::string Source = impls::preludeSource() + UserStack;

  // Step 2: a symbolic test - one seeded push, then push/pop against
  // pop/push, arguments drawn from {0,1}.
  std::string Err;
  TestSpec Test;
  if (!parseTestNotation("u ( uo | ou )", stackAlphabet(), Test, Err)) {
    std::printf("bad test notation: %s\n", Err.c_str());
    return 1;
  }
  Test.Name = "Ui2";

  // Step 3: check on both ends of the model spectrum.
  std::printf("unfenced user stack, test u ( uo | ou ):\n");
  RunOptions SC;
  SC.Check.Model = memmodel::ModelParams::sc();
  report("sequential consistency:", runTest(Source, Test, SC));

  RunOptions RLX;
  RLX.Check.Model = memmodel::ModelParams::relaxed();
  checker::CheckResult Weak = runTest(Source, Test, RLX);
  report("relaxed:", Weak); // step 4: the trace shows the stale read

  // Step 5: synthesize the missing fences and re-check.
  std::printf("\nsynthesizing fences on relaxed...\n");
  SynthOptions Synth;
  Synth.Check.Model = memmodel::ModelParams::relaxed();
  Synth.MinLine = 1; // the user source holds lines beyond the prelude
  for (char C : impls::preludeSource())
    Synth.MinLine += C == '\n';
  SynthResult S = synthesizeFences(Source, {Test}, Synth);
  if (!S.Success) {
    std::printf("  synthesis failed: %s\n", S.Message.c_str());
    return 1;
  }
  for (const std::string &Step : S.Log)
    std::printf("  %s\n", Step.c_str());
  for (const FencePlacement &P : S.Fences)
    std::printf("  -> insert %s\n", placementStr(P).c_str());

  std::printf("\nDone: the placement above makes the test pass on "
              "Relaxed; the repository's\n'treiber' implementation ships "
              "these fences (see impls::sourceFor(\"treiber\")).\n");
  return 0;
}
