//===--- checkfence_cli.cpp - the command-line front door -------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// Usage:
//   checkfence [options] <impl> <test>
//   checkfence [options] --file impl.c --kind queue --notation "( e | d )"
//
//   <impl>  one of: ms2 msn lazylist harris snark treiber  (or --file <path>)
//   <test>  a Fig. 8 test name (T0, Tpc3, Sac, D0, ...) or --notation
//
// Options:
//   --model sc|tso|pso|relaxed  target memory model (default relaxed)
//   --strip-fences           remove all fence() calls
//   --strip-line N           remove the fence on source line N (repeatable)
//   --define NAME            preprocessor define (e.g. LAZYLIST_INIT_BUG)
//   --refspec                mine the spec from the reference implementation
//   --rank-order             use the rank-based order encoding
//   --no-range               disable range-analysis optimizations
//   --spec                   print the mined observation set
//   --synth                  synthesize a fence placement (from stripped)
//   --quiet                  verdict only
//
//===----------------------------------------------------------------------===//

#include "harness/Catalog.h"
#include "harness/FenceSynth.h"
#include "impls/Impls.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace checkfence;
using namespace checkfence::harness;

namespace {

void usage() {
  std::printf(
      "usage: checkfence [options] <impl> <test>\n"
      "  impl: ms2 | msn | lazylist | harris | snark | treiber | --file <path>\n"
      "  test: a Fig. 8 name (T0, Tpc3, Sac, D0, ...) or --notation "
      "\"( e | d )\"\n"
      "options:\n"
      "  --model sc|tso|pso|relaxed  target model (default: relaxed)\n"
      "  --strip-fences       remove all fence() calls\n"
      "  --strip-line N       remove the fence on line N (repeatable)\n"
      "  --define NAME        preprocessor define\n"
      "  --refspec            mine the spec from the reference impl\n"
      "  --rank-order         rank-based order encoding\n"
      "  --no-range           disable range-analysis optimizations\n"
      "  --kind queue|set|deque|stack  type for --file/--notation\n"
      "  --spec               print the mined observation set\n"
      "  --synth              synthesize a fence placement instead of\n"
      "                       checking (starts from stripped fences)\n"
      "  --quiet              verdict only\n"
      "  --list               list implementations and tests\n");
}

void listCatalog() {
  std::printf("implementations:\n");
  for (const impls::ImplInfo &I : impls::allImpls())
    std::printf("  %-9s (%s)  %s\n", I.Name.c_str(), I.Kind.c_str(),
                I.Description.c_str());
  std::printf("tests:\n");
  for (const CatalogEntry &E : paperTests())
    std::printf("  %-8s (%s)  %s\n", E.Name.c_str(), E.Kind.c_str(),
                E.Notation.c_str());
}

} // namespace

int main(int argc, char **argv) {
  std::string Impl, Test, File, Kind, Notation, Model = "relaxed";
  RunOptions Opts;
  bool PrintSpec = false, Quiet = false, RefSpec = false, Synth = false;

  std::vector<std::string> Positional;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> std::string {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "missing argument after %s\n", A.c_str());
        exit(2);
      }
      return argv[++I];
    };
    if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else if (A == "--list") {
      listCatalog();
      return 0;
    } else if (A == "--model") {
      Model = Next();
    } else if (A == "--strip-fences") {
      Opts.StripFences = true;
    } else if (A == "--strip-line") {
      Opts.StripFenceLines.insert(std::atoi(Next().c_str()));
    } else if (A == "--define") {
      Opts.Defines.insert(Next());
    } else if (A == "--refspec") {
      RefSpec = true;
    } else if (A == "--rank-order") {
      Opts.Check.Order = encode::OrderMode::Rank;
    } else if (A == "--no-range") {
      Opts.Check.RangeAnalysis = false;
    } else if (A == "--file") {
      File = Next();
    } else if (A == "--kind") {
      Kind = Next();
    } else if (A == "--notation") {
      Notation = Next();
    } else if (A == "--spec") {
      PrintSpec = true;
    } else if (A == "--synth") {
      Synth = true;
    } else if (A == "--quiet") {
      Quiet = true;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", A.c_str());
      return 2;
    } else {
      Positional.push_back(A);
    }
  }

  if (Positional.size() > 0)
    Impl = Positional[0];
  if (Positional.size() > 1)
    Test = Positional[1];

  if (auto K = memmodel::modelKindFromName(Model)) {
    Opts.Check.Model = *K;
  } else {
    std::fprintf(stderr, "unknown model '%s'\n", Model.c_str());
    return 2;
  }

  // Resolve the implementation source.
  std::string Source;
  if (!File.empty()) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", File.c_str());
      return 2;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Source = impls::preludeSource() + SS.str();
  } else if (!Impl.empty()) {
    Source = impls::sourceFor(Impl);
    for (const impls::ImplInfo &I : impls::allImpls())
      if (I.Name == Impl)
        Kind = I.Kind;
  } else {
    usage();
    return 2;
  }

  // Resolve the test.
  TestSpec Spec;
  if (!Notation.empty()) {
    if (Kind.empty()) {
      std::fprintf(stderr, "--notation requires --kind\n");
      return 2;
    }
    std::string Err;
    if (!parseTestNotation(Notation, alphabetFor(Kind), Spec, Err)) {
      std::fprintf(stderr, "bad test notation: %s\n", Err.c_str());
      return 2;
    }
    Spec.Name = "custom";
  } else if (!Test.empty()) {
    Spec = testByName(Test);
  } else {
    usage();
    return 2;
  }

  if (RefSpec) {
    if (Kind.empty()) {
      std::fprintf(stderr, "--refspec requires a known --kind\n");
      return 2;
    }
    Opts.SpecSource = impls::referenceFor(Kind);
  }

  if (Synth) {
    SynthOptions SO;
    SO.Check = Opts.Check;
    SO.Defines = Opts.Defines;
    SO.MinLine = 1;
    for (char C : impls::preludeSource())
      SO.MinLine += C == '\n';
    SynthResult S = synthesizeFences(Source, {Spec}, SO);
    if (!Quiet)
      for (const std::string &Step : S.Log)
        std::printf("%s\n", Step.c_str());
    if (!S.Success) {
      std::printf("SYNTHESIS FAILED: %s\n", S.Message.c_str());
      return 1;
    }
    std::printf("%s (%d checks, %.1fs)\n", S.Message.c_str(), S.ChecksRun,
                S.TotalSeconds);
    for (const FencePlacement &P : S.Fences)
      std::printf("  insert %s\n", placementStr(P).c_str());
    return 0;
  }

  checker::CheckResult R = runTest(Source, Spec, Opts);

  std::printf("%s\n", checker::checkStatusName(R.Status));
  if (Quiet)
    return R.passed() ? 0 : 1;

  std::printf("%s\n", R.Message.c_str());
  std::printf("stats: %d instrs, %d loads, %d stores | spec %d obs "
              "(%.2fs) | CNF %d vars %llu clauses | encode %.2fs solve "
              "%.2fs | total %.2fs, %d bound rounds\n",
              R.Stats.UnrolledInstrs, R.Stats.Loads, R.Stats.Stores,
              R.Stats.ObservationCount, R.Stats.MiningSeconds,
              R.Stats.SatVars,
              static_cast<unsigned long long>(R.Stats.SatClauses),
              R.Stats.EncodeSeconds, R.Stats.SolveSeconds,
              R.Stats.TotalSeconds, R.Stats.BoundIterations);
  if (PrintSpec)
    for (const checker::Observation &O : R.Spec)
      std::printf("  %s\n", O.str().c_str());
  if (R.Counterexample)
    std::printf("\n%s", R.Counterexample->columns().c_str());
  return R.passed() ? 0 : 1;
}
