//===--- checkfence_cli.cpp - the command-line front door -------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// Usage:
//   checkfence [options] <impl> <test>
//   checkfence [options] --file impl.c --kind queue --notation "( e | d )"
//   checkfence --matrix [--impls a,b] [--tests x,y] [--models m,n] [options]
//
//   <impl>  one of: ms2 msn lazylist harris snark treiber  (or --file <path>)
//   <test>  a Fig. 8 test name (T0, Tpc3, Sac, D0, ...) or --notation
//
// Options:
//   --model <model>          target memory model (default relaxed); a name
//                            (sc tso pso rmo relaxed serial) or a lattice
//                            descriptor like "po:ll+ls,fwd" (docs/MODELS.md)
//   --strip-fences           remove all fence() calls
//   --strip-line N           remove the fence on source line N (repeatable)
//   --define NAME            preprocessor define (e.g. LAZYLIST_INIT_BUG)
//   --refspec                mine the spec from the reference implementation
//   --rank-order             use the rank-based order encoding
//   --no-range               disable range-analysis optimizations
//   --spec                   print the mined observation set
//   --synth                  synthesize a fence placement (from stripped)
//   --matrix                 run an (impl x test x model) evaluation matrix
//   --impls a,b / --tests x,y / --models m,n   matrix axes (defaults: all
//                            impls, all kind-matching tests, --model);
//                            --models also accepts "all" (every named
//                            model) and "lattice" (the full sweep with a
//                            weakest-passing-model summary)
//   --jobs N                 worker threads (matrix cells / synth checks)
//   --json PATH              write a machine-readable report ("-" = stdout)
//   --no-timings             omit timing fields from the JSON report (the
//                            result is then byte-identical at any --jobs)
//   --quiet                  verdict only
//
//===----------------------------------------------------------------------===//

#include "engine/MatrixRunner.h"
#include "harness/Catalog.h"
#include "harness/FenceSynth.h"
#include "impls/Impls.h"
#include "support/Format.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace checkfence;
using namespace checkfence::harness;

namespace {

void usage() {
  std::printf(
      "usage: checkfence [options] <impl> <test>\n"
      "  impl: ms2 | msn | lazylist | harris | snark | treiber | --file <path>\n"
      "  test: a Fig. 8 name (T0, Tpc3, Sac, D0, ...) or --notation "
      "\"( e | d )\"\n"
      "options:\n"
      "  --model <m>          target model (default: relaxed): a name\n"
      "                       (sc tso pso rmo relaxed serial) or a\n"
      "                       descriptor like po:ll+ls,fwd\n"
      "  --strip-fences       remove all fence() calls\n"
      "  --strip-line N       remove the fence on line N (repeatable)\n"
      "  --define NAME        preprocessor define\n"
      "  --refspec            mine the spec from the reference impl\n"
      "  --rank-order         rank-based order encoding\n"
      "  --no-range           disable range-analysis optimizations\n"
      "  --kind queue|set|deque|stack  type for --file/--notation\n"
      "  --spec               print the mined observation set\n"
      "  --synth              synthesize a fence placement instead of\n"
      "                       checking (starts from stripped fences)\n"
      "  --matrix             run an (impl x test x model) matrix\n"
      "  --impls a,b          matrix implementations (default: all)\n"
      "  --tests x,y          matrix tests (default: kind-matching)\n"
      "  --models m,n         matrix models (default: --model); 'all' =\n"
      "                       every named model, 'lattice' = the full\n"
      "                       relaxation-lattice sweep\n"
      "  --jobs N             worker threads for --matrix / --synth\n"
      "  --json PATH          write a JSON report ('-' = stdout)\n"
      "  --no-timings         omit timing fields from the JSON report\n"
      "                       (byte-identical output at any --jobs)\n"
      "  --quiet              verdict only\n"
      "  --list               list implementations and tests\n");
}

/// Writes \p Content to \p Path ("-" = stdout). False on I/O failure.
bool writeReport(const std::string &Path, const std::string &Content) {
  if (Path == "-") {
    std::printf("%s", Content.c_str());
    return true;
  }
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return false;
  }
  Out << Content;
  return true;
}

std::vector<std::string> splitList(const std::string &S) {
  std::vector<std::string> Out;
  std::string Cur;
  for (char C : S) {
    if (C == ',') {
      if (!Cur.empty())
        Out.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Out.push_back(Cur);
  return Out;
}

void listCatalog() {
  std::printf("implementations:\n");
  for (const impls::ImplInfo &I : impls::allImpls())
    std::printf("  %-9s (%s)  %s\n", I.Name.c_str(), I.Kind.c_str(),
                I.Description.c_str());
  std::printf("tests:\n");
  for (const CatalogEntry &E : paperTests())
    std::printf("  %-8s (%s)  %s\n", E.Name.c_str(), E.Kind.c_str(),
                E.Notation.c_str());
  std::printf("models (strongest first):\n");
  for (const memmodel::NamedModel &N : memmodel::namedModels())
    std::printf("  %-8s %-16s %s\n", N.Name.c_str(),
                N.Params.str().c_str(), N.Note.c_str());
}

} // namespace

int main(int argc, char **argv) {
  std::string Impl, Test, File, Kind, Notation, Model = "relaxed";
  RunOptions Opts;
  bool PrintSpec = false, Quiet = false, RefSpec = false, Synth = false;
  bool Matrix = false, NoTimings = false;
  int Jobs = 1;
  std::string JsonPath;
  std::vector<std::string> MatrixImpls, MatrixTests;
  std::vector<std::string> MatrixModels;

  std::vector<std::string> Positional;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> std::string {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "missing argument after %s\n", A.c_str());
        exit(2);
      }
      return argv[++I];
    };
    if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else if (A == "--list") {
      listCatalog();
      return 0;
    } else if (A == "--model") {
      Model = Next();
    } else if (A == "--strip-fences") {
      Opts.StripFences = true;
    } else if (A == "--strip-line") {
      Opts.StripFenceLines.insert(std::atoi(Next().c_str()));
    } else if (A == "--define") {
      Opts.Defines.insert(Next());
    } else if (A == "--refspec") {
      RefSpec = true;
    } else if (A == "--rank-order") {
      Opts.Check.Order = encode::OrderMode::Rank;
    } else if (A == "--no-range") {
      Opts.Check.RangeAnalysis = false;
    } else if (A == "--file") {
      File = Next();
    } else if (A == "--kind") {
      Kind = Next();
    } else if (A == "--notation") {
      Notation = Next();
    } else if (A == "--spec") {
      PrintSpec = true;
    } else if (A == "--synth") {
      Synth = true;
    } else if (A == "--matrix") {
      Matrix = true;
    } else if (A == "--impls") {
      MatrixImpls = splitList(Next());
    } else if (A == "--tests") {
      MatrixTests = splitList(Next());
    } else if (A == "--models") {
      MatrixModels = splitList(Next());
    } else if (A == "--jobs") {
      Jobs = std::atoi(Next().c_str());
      if (Jobs < 1)
        Jobs = 1;
    } else if (A == "--json") {
      JsonPath = Next();
    } else if (A == "--no-timings") {
      NoTimings = true;
    } else if (A == "--quiet") {
      Quiet = true;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", A.c_str());
      return 2;
    } else {
      Positional.push_back(A);
    }
  }

  if (Positional.size() > 0)
    Impl = Positional[0];
  if (Positional.size() > 1)
    Test = Positional[1];

  if (auto K = memmodel::modelFromName(Model)) {
    Opts.Check.Model = *K;
  } else {
    std::fprintf(stderr, "unknown model '%s'\n", Model.c_str());
    return 2;
  }

  // Matrix mode: expand the (impl x test x model) grid, run it on the
  // worker pool, and report.
  if (Matrix) {
    std::vector<memmodel::ModelParams> Models;
    for (const std::string &M : MatrixModels) {
      if (M == "all") {
        for (const memmodel::NamedModel &N : memmodel::namedModels())
          Models.push_back(N.Params);
        continue;
      }
      if (M == "lattice") {
        for (const memmodel::ModelParams &P : memmodel::latticeModels())
          Models.push_back(P);
        continue;
      }
      auto K = memmodel::modelFromName(M);
      if (!K) {
        std::fprintf(stderr, "unknown model '%s'\n", M.c_str());
        return 2;
      }
      Models.push_back(*K);
    }
    if (Models.empty())
      Models.push_back(Opts.Check.Model);
    std::vector<engine::MatrixCell> Cells =
        expandMatrix(MatrixImpls, MatrixTests, Models);
    if (Cells.empty()) {
      std::fprintf(stderr, "matrix is empty (check --impls/--tests)\n");
      return 2;
    }
    engine::MatrixRunner Runner(Jobs);
    engine::MatrixReport Report = Runner.run(Cells, catalogCellRunner(Opts));
    if (!Quiet)
      std::printf("%s", Report.table().c_str());
    if (!JsonPath.empty() && !writeReport(JsonPath, Report.json(!NoTimings)))
      return 2;
    return Report.allCompleted() ? 0 : 1;
  }

  // Resolve the implementation source.
  std::string Source;
  if (!File.empty()) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", File.c_str());
      return 2;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Source = impls::preludeSource() + SS.str();
  } else if (!Impl.empty()) {
    Source = impls::sourceFor(Impl);
    for (const impls::ImplInfo &I : impls::allImpls())
      if (I.Name == Impl)
        Kind = I.Kind;
  } else {
    usage();
    return 2;
  }

  // Resolve the test.
  TestSpec Spec;
  if (!Notation.empty()) {
    if (Kind.empty()) {
      std::fprintf(stderr, "--notation requires --kind\n");
      return 2;
    }
    std::string Err;
    if (!parseTestNotation(Notation, alphabetFor(Kind), Spec, Err)) {
      std::fprintf(stderr, "bad test notation: %s\n", Err.c_str());
      return 2;
    }
    Spec.Name = "custom";
  } else if (!Test.empty()) {
    Spec = testByName(Test);
  } else {
    usage();
    return 2;
  }

  if (RefSpec) {
    if (Kind.empty()) {
      std::fprintf(stderr, "--refspec requires a known --kind\n");
      return 2;
    }
    Opts.SpecSource = impls::referenceFor(Kind);
  }

  if (Synth) {
    SynthOptions SO;
    SO.Check = Opts.Check;
    SO.Defines = Opts.Defines;
    SO.Jobs = Jobs;
    SO.MinLine = 1;
    for (char C : impls::preludeSource())
      SO.MinLine += C == '\n';
    SynthResult S = synthesizeFences(Source, {Spec}, SO);
    if (!Quiet)
      for (const std::string &Step : S.Log)
        std::printf("%s\n", Step.c_str());
    if (!JsonPath.empty()) {
      std::string Json = formatString(
          "{\"success\": %s, \"message\": \"%s\", "
          "\"checks\": %d, \"seconds\": %.3f, \"fences\": [",
          S.Success ? "true" : "false",
          engine::jsonEscape(S.Message).c_str(), S.ChecksRun,
          S.TotalSeconds);
      for (size_t I = 0; I < S.Fences.size(); ++I)
        Json += formatString("%s{\"line\": %d, \"kind\": \"%s\"}",
                             I ? ", " : "", S.Fences[I].Line,
                             lsl::fenceKindName(S.Fences[I].Kind));
      Json += "]}\n";
      if (!writeReport(JsonPath, Json))
        return 2;
    }
    if (!S.Success) {
      std::printf("SYNTHESIS FAILED: %s\n", S.Message.c_str());
      return 1;
    }
    std::printf("%s (%d checks, %.1fs)\n", S.Message.c_str(), S.ChecksRun,
                S.TotalSeconds);
    for (const FencePlacement &P : S.Fences)
      std::printf("  insert %s\n", placementStr(P).c_str());
    return 0;
  }

  checker::CheckResult R = runTest(Source, Spec, Opts);

  if (!JsonPath.empty()) {
    // Reuse the matrix report shape for a single cell.
    engine::MatrixReport Report;
    Report.Cells.resize(1);
    Report.Cells[0].Cell.Impl = Impl.empty() ? File : Impl;
    Report.Cells[0].Cell.Test = Spec.Name;
    Report.Cells[0].Cell.Model = Opts.Check.Model;
    Report.Cells[0].Result = R;
    Report.Cells[0].Seconds = R.Stats.TotalSeconds;
    Report.WallSeconds = R.Stats.TotalSeconds;
    if (!writeReport(JsonPath, Report.json(!NoTimings)))
      return 2;
  }

  std::printf("%s\n", checker::checkStatusName(R.Status));
  if (Quiet)
    return R.passed() ? 0 : 1;

  std::printf("%s\n", R.Message.c_str());
  std::printf("stats: %d instrs, %d loads, %d stores | spec %d obs "
              "(%.2fs) | CNF %d vars %llu clauses | encode %.2fs solve "
              "%.2fs | total %.2fs, %d bound rounds\n",
              R.Stats.Inclusion.UnrolledInstrs, R.Stats.Inclusion.Loads, R.Stats.Inclusion.Stores,
              R.Stats.ObservationCount, R.Stats.MiningSeconds,
              R.Stats.Inclusion.SatVars,
              static_cast<unsigned long long>(R.Stats.Inclusion.SatClauses),
              R.Stats.Inclusion.EncodeSeconds, R.Stats.Inclusion.SolveSeconds,
              R.Stats.TotalSeconds, R.Stats.BoundIterations);
  if (PrintSpec)
    for (const checker::Observation &O : R.Spec)
      std::printf("  %s\n", O.str().c_str());
  if (R.Counterexample)
    std::printf("\n%s", R.Counterexample->columns().c_str());
  return R.passed() ? 0 : 1;
}
