//===--- checkfence_cli.cpp - the command-line front door -------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// Usage:
//   checkfence [options] <impl> <test>
//   checkfence [options] --file impl.c --kind queue --notation "( e | d )"
//   checkfence --matrix [--impls a,b] [--tests x,y] [--models m,n] [options]
//
//   <impl>  one of: ms2 msn lazylist harris snark treiber  (or --file <path>)
//   <test>  a Fig. 8 test name (T0, Tpc3, Sac, D0, ...) or --notation
//
// The CLI is a thin shell over the public API (include/checkfence/): it
// parses flags into a checkfence::Request, dispatches it on a
// checkfence::Verifier - or, with --remote URL, on a running checkfenced
// daemon via RemoteVerifier - and renders the result. Both dispatch paths
// feed one set of emit functions, so remote output and exit codes are
// byte-identical to a local run. Exit codes follow the verdict: 0 pass,
// 1 fail, 2 sequential bug, 3 bounds exhausted, 4 error, 5 cancelled;
// usage/I-O problems exit 64.
//
//===----------------------------------------------------------------------===//

#include "checkfence/Remote.h"
#include "checkfence/checkfence.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace checkfence;

namespace {

constexpr int ExitUsage = 64; // EX_USAGE: bad flags, unreadable files

void usage() {
  std::printf(
      "usage: checkfence [options] <impl> <test>\n"
      "  impl: ms2 | msn | lazylist | harris | snark | treiber | --file <path>\n"
      "  test: a Fig. 8 name (T0, Tpc3, Sac, D0, ...) or --notation "
      "\"( e | d )\"\n"
      "options:\n"
      "  --model <m>          target model (default: relaxed): a name\n"
      "                       (sc tso pso rmo relaxed serial) or a\n"
      "                       descriptor like po:ll+ls,fwd\n"
      "  --strip-fences       remove all fence() calls\n"
      "  --strip-line N       remove the fence on line N (repeatable)\n"
      "  --define NAME        preprocessor define\n"
      "  --refspec            mine the spec from the reference impl\n"
      "  --rank-order         rank-based order encoding\n"
      "  --no-range           disable range-analysis optimizations\n"
      "  --kind queue|set|deque|stack  type for --file/--notation\n"
      "  --spec               print the mined observation set\n"
      "  --synth              synthesize a fence placement instead of\n"
      "                       checking (starts from stripped fences)\n"
      "  --analyze            static critical-cycle robustness lint\n"
      "                       instead of checking: per-lattice-point\n"
      "                       delay pairs, verdicts, witness cycles,\n"
      "                       and suggested fence cuts - no SAT solving\n"
      "                       (--models narrows the axis; JSON output\n"
      "                       is byte-identical at any --jobs)\n"
      "  --matrix             run an (impl x test x model) matrix\n"
      "  --impls a,b          matrix implementations (default: all)\n"
      "  --tests x,y          matrix tests (default: kind-matching)\n"
      "  --models m,n         matrix/explore models (default: --model,\n"
      "                       explore: sc,tso,relaxed); 'all' = every\n"
      "                       named model, 'lattice' = the full\n"
      "                       relaxation-lattice sweep\n"
      "  --explore            randomized differential exploration:\n"
      "                       generated scenarios cross-checked against\n"
      "                       the axiomatic/reference oracles\n"
      "  --seed N             explore generation seed (default 1)\n"
      "  --budget N           explore scenarios to run (default 100)\n"
      "  --no-shrink          keep divergent scenarios unshrunk\n"
      "  --corpus DIR         persist seen-scenario fingerprints and\n"
      "                       shrunk repros in DIR across runs\n"
      "  --jobs N             total worker threads: matrix cells, synth\n"
      "                       minimization, explore scenarios, and check\n"
      "                       portfolios all share the one allowance\n"
      "  --portfolio W        intra-check solver portfolio width: 1 =\n"
      "                       serial, W > 1 = race up to W diversified\n"
      "                       solvers per hard query, 0 = auto (one per\n"
      "                       spare --jobs worker). Verdicts and\n"
      "                       timing-free JSON are identical at any W\n"
      "  --no-fast-oracle     disable the polynomial reads-from oracle:\n"
      "                       checks skip SAT-pruning and explore falls\n"
      "                       back to the brute-force enumerator on all\n"
      "                       models. Results are identical either way\n"
      "  --oracle-sample N    explore: re-run the brute-force enumerator\n"
      "                       as a differential reference on every Nth\n"
      "                       eligible scenario (default 8, 0 = never)\n"
      "  --symbolic N         explore: symbolic catalog tests per 1000\n"
      "                       scenarios, the rest litmus (default 300;\n"
      "                       0 = pure litmus, the oracle fragment)\n"
      "  --deadline S         cancel cooperatively after S seconds\n"
      "  --cache PATH         persist the cross-run result cache at PATH\n"
      "  --no-cache           bypass the result cache\n"
      "  --remote URL         dispatch to a running checkfenced daemon\n"
      "                       (http://host:port, see docs/SERVER.md);\n"
      "                       output and exit codes match a local run.\n"
      "                       --jobs, --corpus, and --cache describe the\n"
      "                       daemon's resources and are decided by it\n"
      "  --priority P         remote admission priority: high | normal |\n"
      "                       low (default normal)\n"
      "  --trace PATH         write a Chrome trace-event JSON timeline\n"
      "                       of this run (load in ui.perfetto.dev; see\n"
      "                       docs/OBSERVABILITY.md). With --remote the\n"
      "                       file also contains the server-side spans.\n"
      "                       Purely observational: reports and verdicts\n"
      "                       are byte-identical with or without it\n"
      "  --json PATH          write a JSON report ('-' = stdout)\n"
      "  --no-timings         omit timing fields from the JSON report\n"
      "                       (byte-identical output at any --jobs)\n"
      "  --quiet              verdict only\n"
      "  --list               list implementations and tests\n"
      "  --version            print the library version\n"
      "  --schema             print the JSON report schema version\n"
      "exit codes: 0 pass, 1 fail, 2 sequential bug, 3 bounds exhausted,\n"
      "            4 error, 5 cancelled, 64 usage/I-O\n");
}

/// Writes \p Content to \p Path ("-" = stdout). False on I/O failure.
bool writeReport(const std::string &Path, const std::string &Content) {
  if (Path == "-") {
    std::printf("%s", Content.c_str());
    return true;
  }
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return false;
  }
  Out << Content;
  return true;
}

std::vector<std::string> splitList(const std::string &S) {
  std::vector<std::string> Out;
  std::string Cur;
  for (char C : S) {
    if (C == ',') {
      if (!Cur.empty())
        Out.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Out.push_back(Cur);
  return Out;
}

void listCatalog() {
  std::printf("implementations:\n");
  for (const ImplDesc &I : listImplementations())
    std::printf("  %-9s (%s)  %s\n", I.Name.c_str(), I.Kind.c_str(),
                I.Description.c_str());
  std::printf("tests:\n");
  for (const TestDesc &T : listTests())
    std::printf("  %-8s (%s)  %s\n", T.Name.c_str(), T.Kind.c_str(),
                T.Notation.c_str());
  std::printf("models (strongest first; * = fast reads-from oracle,\n"
              "                         + = critical-cycle analysis):\n");
  for (const ModelDesc &M : listModels())
    std::printf("  %-8s %-16s %s%s %s\n", M.Name.c_str(),
                M.Descriptor.c_str(), M.FastOracle ? "*" : " ",
                M.Analysis ? "+" : " ", M.Note.c_str());
}

//===----------------------------------------------------------------------===//
// Emit functions - the single rendering path both dispatch modes feed.
// Local runs populate the Remote* structs from the in-process outcomes;
// remote runs decode them off the wire. Identical inputs here is what
// makes `--remote` byte-identical to a local run.
//===----------------------------------------------------------------------===//

int emitExplore(const RemoteExplore &E, const std::string &JsonPath,
                bool NoTimings, bool Quiet) {
  if (!E.Ok) {
    std::fprintf(stderr, "%s\n", E.Error.c_str());
    return ExitUsage;
  }
  if (!JsonPath.empty() &&
      !writeReport(JsonPath, NoTimings ? E.JsonNoTimings : E.Json))
    return ExitUsage;
  for (const std::string &W : E.Warnings)
    std::fprintf(stderr, "warning: %s\n", W.c_str());
  if (!Quiet) {
    std::printf("explore: seed %llu, %d generated, %d deduplicated, "
                "%d run, %d skips, %d divergences (%.1fs)\n",
                E.Seed, E.Generated, E.Deduplicated, E.Run, E.Skips,
                static_cast<int>(E.Divergences.size()), E.WallSeconds);
    for (const ExploreDivergence &D : E.Divergences) {
      std::string Where =
          D.ReproPath.empty() ? std::string() : " -> " + D.ReproPath;
      std::printf("DIVERGENCE %s [%s%s%s] %d threads, %d ops%s\n",
                  D.Label.c_str(), D.Kind.c_str(),
                  D.Model.empty() ? "" : " @ ",
                  D.Model.c_str(), D.Threads, D.Ops, Where.c_str());
      if (!D.Notation.empty())
        std::printf("  notation: %s\n", D.Notation.c_str());
      std::printf("  %s\n", D.Detail.c_str());
    }
  }
  if (E.Cancelled)
    return exitCodeFor(Status::Cancelled);
  return E.Divergences.empty() ? 0 : 1;
}

int emitMatrix(const RemoteReport &R, const std::string &JsonPath,
               bool NoTimings, bool Quiet) {
  if (!R.Ok) {
    std::fprintf(stderr, "%s\n", R.Error.c_str());
    return ExitUsage;
  }
  if (!Quiet)
    std::printf("%s", R.Table.c_str());
  if (!JsonPath.empty() &&
      !writeReport(JsonPath, NoTimings ? R.JsonNoTimings : R.Json))
    return ExitUsage;
  if (R.AllCompleted)
    return 0;
  // Cancelled-only incompleteness (a --deadline expiry) reports as
  // CANCELLED; any errored cell dominates.
  return exitCodeFor(R.ErrorCells > 0 ? Status::Error
                                      : Status::Cancelled);
}

int emitAnalysis(const RemoteAnalysis &A, const std::string &JsonPath,
                 bool Quiet) {
  if (!A.Ok) {
    std::fprintf(stderr, "%s\n", A.Error.c_str());
    return exitCodeFor(Status::Error);
  }
  if (!Quiet)
    std::printf("%s", A.Table.c_str());
  if (!JsonPath.empty() && !writeReport(JsonPath, A.Json))
    return ExitUsage;
  return 0;
}

int emitSynth(const SynthOutcome &S, const std::string &Json,
              const std::string &JsonPath, bool Quiet) {
  if (!Quiet)
    for (const std::string &Step : S.Log)
      std::printf("%s\n", Step.c_str());
  if (!JsonPath.empty() && !writeReport(JsonPath, Json))
    return ExitUsage;
  if (S.Cancelled) {
    std::printf("SYNTHESIS CANCELLED: %s\n", S.Message.c_str());
    return exitCodeFor(Status::Cancelled);
  }
  if (!S.Success) {
    std::printf("SYNTHESIS FAILED: %s\n", S.Message.c_str());
    return 1;
  }
  std::printf("%s (%d checks, %.1fs)\n", S.Message.c_str(), S.ChecksRun,
              S.TotalSeconds);
  for (const SynthFence &F : S.Fences)
    std::printf("  insert %s fence at line %d\n", F.Kind.c_str(),
                F.Line);
  return 0;
}

int emitCheck(const Result &R, const std::string &JsonPath,
              bool NoTimings, bool Quiet, bool PrintSpec) {
  if (!JsonPath.empty() && !writeReport(JsonPath, R.json(!NoTimings)))
    return ExitUsage;

  std::printf("%s\n", statusName(R.Verdict));
  if (Quiet)
    return exitCodeFor(R.Verdict);

  std::printf("%s\n", R.Message.c_str());
  std::printf("stats: %d instrs, %d loads, %d stores | spec %d obs "
              "(%.2fs) | CNF %d vars %llu clauses | encode %.2fs solve "
              "%.2fs | total %.2fs, %d bound rounds%s\n",
              R.Stats.UnrolledInstrs, R.Stats.Loads, R.Stats.Stores,
              R.Stats.ObservationCount, R.Stats.MiningSeconds,
              R.Stats.SatVars, R.Stats.SatClauses,
              R.Stats.EncodeSeconds, R.Stats.SolveSeconds,
              R.Stats.TotalSeconds, R.Stats.BoundIterations,
              R.FromCache ? " (cached)" : "");
  if (PrintSpec)
    for (const std::string &O : R.Observations)
      std::printf("  %s\n", O.c_str());
  if (R.HasCounterexample)
    std::printf("\n%s", R.CounterexampleColumns.c_str());
  return exitCodeFor(R.Verdict);
}

/// Transport and server-side dispatch problems (connection refused,
/// queue full, protocol drift) are infrastructure errors, not verdicts:
/// report on stderr, exit 4. A full queue additionally surfaces the
/// daemon's Retry-After hint.
int remoteFail(const RemoteStatus &S) {
  std::fprintf(stderr, "remote: %s\n", S.Error.c_str());
  if (S.HttpStatus == 429 && S.RetryAfterSeconds > 0)
    std::fprintf(stderr, "remote: retry after %d second%s\n",
                 S.RetryAfterSeconds,
                 S.RetryAfterSeconds == 1 ? "" : "s");
  return exitCodeFor(Status::Error);
}

// SIGINT during a local run cancels cooperatively (the run winds down
// and exits 5 like any other cancellation). CancelToken::cancel() is an
// atomic store on a pre-allocated flag, so it is safe in a handler; a
// second ^C gets the default fatal behavior.
CancelToken *InterruptToken = nullptr;

void onInterrupt(int) {
  if (InterruptToken)
    InterruptToken->cancel();
  std::signal(SIGINT, SIG_DFL);
}

} // namespace

int main(int argc, char **argv) {
  std::string Impl, Test, File, Kind, Notation;
  Request Req = Request::check();
  bool PrintSpec = false, Quiet = false, Synth = false, Matrix = false;
  bool Explore = false, Analyze = false, NoTimings = false;
  std::string JsonPath, CachePath, RemoteUrl, Priority = "normal";
  std::vector<std::string> MatrixImpls, MatrixTests, MatrixModels;

  std::vector<std::string> Positional;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> std::string {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "missing argument after %s\n", A.c_str());
        exit(ExitUsage);
      }
      return argv[++I];
    };
    if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else if (A == "--version") {
      std::printf("checkfence %s\n", versionString());
      return 0;
    } else if (A == "--schema") {
      std::printf("%d\n", JsonSchemaVersion);
      return 0;
    } else if (A == "--list") {
      listCatalog();
      return 0;
    } else if (A == "--model") {
      Req.model(Next());
    } else if (A == "--strip-fences") {
      Req.stripFences();
    } else if (A == "--strip-line") {
      Req.stripFenceLine(std::atoi(Next().c_str()));
    } else if (A == "--define") {
      Req.define(Next());
    } else if (A == "--refspec") {
      Req.refSpec();
    } else if (A == "--rank-order") {
      Req.rankOrder();
    } else if (A == "--no-range") {
      Req.rangeAnalysis(false);
    } else if (A == "--file") {
      File = Next();
    } else if (A == "--kind") {
      Kind = Next();
    } else if (A == "--notation") {
      Notation = Next();
    } else if (A == "--spec") {
      PrintSpec = true;
    } else if (A == "--synth") {
      Synth = true;
    } else if (A == "--analyze") {
      Analyze = true;
    } else if (A == "--matrix") {
      Matrix = true;
    } else if (A == "--explore") {
      Explore = true;
    } else if (A == "--seed") {
      Req.seed(std::strtoull(Next().c_str(), nullptr, 10));
    } else if (A == "--budget") {
      Req.budget(std::atoi(Next().c_str()));
    } else if (A == "--no-shrink") {
      Req.shrink(false);
    } else if (A == "--corpus") {
      Req.corpus(Next());
    } else if (A == "--impls") {
      MatrixImpls = splitList(Next());
    } else if (A == "--tests") {
      MatrixTests = splitList(Next());
    } else if (A == "--models") {
      MatrixModels = splitList(Next());
    } else if (A == "--jobs") {
      Req.jobs(std::atoi(Next().c_str()));
    } else if (A == "--portfolio") {
      Req.portfolioWidth(std::atoi(Next().c_str()));
    } else if (A == "--no-fast-oracle") {
      Req.fastOracle(false);
    } else if (A == "--oracle-sample") {
      Req.oracleSamplePeriod(std::atoi(Next().c_str()));
    } else if (A == "--symbolic") {
      Req.symbolicShare(std::atoi(Next().c_str()));
    } else if (A == "--deadline") {
      Req.deadline(std::atof(Next().c_str()));
    } else if (A == "--cache") {
      CachePath = Next();
    } else if (A == "--no-cache") {
      Req.noCache();
    } else if (A == "--remote") {
      RemoteUrl = Next();
    } else if (A == "--priority") {
      Priority = Next();
    } else if (A == "--trace") {
      Req.traceFile(Next());
    } else if (A == "--json") {
      JsonPath = Next();
    } else if (A == "--no-timings") {
      NoTimings = true;
    } else if (A == "--quiet") {
      Quiet = true;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", A.c_str());
      return ExitUsage;
    } else {
      Positional.push_back(A);
    }
  }

  if (Positional.size() > 0)
    Impl = Positional[0];
  if (Positional.size() > 1)
    Test = Positional[1];

  // A typo'd model name is a usage error (64), not an engine ERROR (4);
  // reject it before dispatching. "all"/"lattice" are matrix-axis
  // keywords, not model names.
  if (!Req.ModelName.empty() && !validModelName(Req.ModelName)) {
    std::fprintf(stderr, "unknown model '%s'\n", Req.ModelName.c_str());
    return ExitUsage;
  }
  for (const std::string &M : MatrixModels)
    if (M != "all" && M != "lattice" && !validModelName(M)) {
      std::fprintf(stderr, "unknown model '%s'\n", M.c_str());
      return ExitUsage;
    }
  if (Priority != "high" && Priority != "normal" && Priority != "low") {
    std::fprintf(stderr, "bad --priority '%s' (high | normal | low)\n",
                 Priority.c_str());
    return ExitUsage;
  }

  // Dispatch target: a daemon (--remote) or an in-process Verifier,
  // constructed lazily so remote runs never touch the local cache file.
  std::unique_ptr<RemoteVerifier> RV;
  std::unique_ptr<Verifier> V;
  if (!RemoteUrl.empty()) {
    RV = std::make_unique<RemoteVerifier>(RemoteUrl);
    if (Priority != "normal")
      RV->setPriority(Priority);
  }
  auto Local = [&]() -> Verifier & {
    if (!V) {
      VerifierConfig Config;
      Config.Jobs = 1;
      Config.CachePath = CachePath;
      V = std::make_unique<Verifier>(Config);
    }
    return *V;
  };

  CancelToken Token;
  if (!RV) {
    // Remote runs cancel server-side when this process (and with it the
    // connection) dies; locally, ^C unwinds cooperatively.
    InterruptToken = &Token;
    std::signal(SIGINT, onInterrupt);
  }

  // Explore mode: seeded scenario generation, differential oracle
  // cross-checks, shrinking, corpus persistence.
  if (Explore) {
    Req.RequestKind = Request::Kind::Explore;
    Req.models(MatrixModels);
    RemoteExplore E;
    if (RV) {
      if (RemoteStatus S = RV->explore(Req, E); !S)
        return remoteFail(S);
    } else {
      ExploreOutcome O = Local().explore(Req, nullptr, Token);
      E.Ok = O.ok();
      E.Error = O.error();
      E.Cancelled = O.cancelled();
      E.Seed = O.seed();
      E.Generated = O.generated();
      E.Deduplicated = O.deduplicated();
      E.Run = O.run();
      E.Skips = O.skips();
      E.Shrunk = O.shrunk();
      E.WallSeconds = O.wallSeconds();
      E.Json = O.json(true);
      E.JsonNoTimings = O.json(false);
      E.Warnings = O.warnings();
      E.Divergences = O.divergences();
    }
    return emitExplore(E, JsonPath, NoTimings, Quiet);
  }

  // Matrix mode: expand the (impl x test x model) grid, run it on the
  // worker pool, and report.
  if (Matrix) {
    Req.RequestKind = Request::Kind::Matrix;
    Req.impls(MatrixImpls).tests(MatrixTests).models(MatrixModels);
    RemoteReport RR;
    if (RV) {
      if (RemoteStatus S = RV->matrix(Req, RR); !S)
        return remoteFail(S);
    } else {
      Report R = Local().matrix(Req, nullptr, Token);
      RR.Ok = R.ok();
      RR.Error = R.error();
      RR.Table = R.table();
      RR.Json = R.json(true);
      RR.JsonNoTimings = R.json(false);
      RR.AllCompleted = R.allCompleted();
      RR.CellCount = R.cellCount();
      RR.ErrorCells = static_cast<int>(R.count(Status::Error));
      RR.CancelledCells = static_cast<int>(R.count(Status::Cancelled));
    }
    return emitMatrix(RR, JsonPath, NoTimings, Quiet);
  }

  // Resolve what to run: a built-in impl, a file, or nothing (usage).
  if (!File.empty()) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", File.c_str());
      return ExitUsage;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Req.source(SS.str()).label(File).dataType(Kind);
  } else if (!Impl.empty()) {
    Req.impl(Impl);
    if (!Kind.empty())
      Req.dataType(Kind);
  } else {
    usage();
    return ExitUsage;
  }

  if (!Notation.empty()) {
    if (Kind.empty() && Impl.empty()) {
      std::fprintf(stderr, "--notation requires --kind\n");
      return ExitUsage;
    }
    Req.notation(Notation);
  } else if (!Test.empty()) {
    Req.test(Test);
  } else {
    usage();
    return ExitUsage;
  }

  if (Analyze) {
    Req.RequestKind = Request::Kind::Analyze;
    Req.models(MatrixModels);
    RemoteAnalysis RA;
    if (RV) {
      if (RemoteStatus S = RV->analyze(Req, RA); !S)
        return remoteFail(S);
    } else {
      AnalysisOutcome A = Local().analyze(Req);
      RA.Ok = A.Ok;
      RA.Error = A.Error;
      RA.Table = A.table();
      RA.Json = A.json();
    }
    return emitAnalysis(RA, JsonPath, Quiet);
  }

  if (Synth) {
    Req.RequestKind = Request::Kind::Synthesis;
    RemoteSynth RS;
    if (RV) {
      if (RemoteStatus S = RV->synthesize(Req, RS); !S)
        return remoteFail(S);
    } else {
      RS.Outcome = Local().synthesize(Req, nullptr, Token);
      RS.Json = RS.Outcome.json();
    }
    return emitSynth(RS.Outcome, RS.Json, JsonPath, Quiet);
  }

  Result R;
  if (RV) {
    if (RemoteStatus S = RV->check(Req, R); !S)
      return remoteFail(S);
  } else {
    R = Local().check(Req, nullptr, Token);
  }
  return emitCheck(R, JsonPath, NoTimings, Quiet, PrintSpec);
}
