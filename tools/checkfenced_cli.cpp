//===--- checkfenced_cli.cpp - the verification daemon ------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// Usage:
//   checkfenced [--port N] [--bind ADDR] [--shards N] [--jobs N]
//               [--queue-depth N] [--cache PATH] [--max-request-seconds S]
//               [--log-level LEVEL] [--slow-request-seconds S]
//
// Runs the long-lived verification server (see docs/SERVER.md). Clients
// talk JSON-RPC over HTTP POST /rpc - the `checkfence --remote URL`
// client mode drives it transparently - and scrape GET /metrics
// (Prometheus) or GET /status (JSON). SIGTERM/SIGINT begin a graceful
// drain: stop accepting, finish queued and in-flight requests, persist
// the result cache, exit 0.
//
//===----------------------------------------------------------------------===//

#include "checkfence/Server.h"
#include "checkfence/checkfence.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>

using namespace checkfence;

namespace {

constexpr int ExitUsage = 64;

void usage() {
  std::printf(
      "usage: checkfenced [options]\n"
      "  --port N                 listen port (default 8417, 0 = ephemeral)\n"
      "  --bind ADDR              bind address (default 127.0.0.1)\n"
      "  --shards N               worker shards = max in-flight requests\n"
      "                           (default 2); each shard owns a Verifier\n"
      "                           and its warm session pool\n"
      "  --jobs N                 Verifier worker threads per shard\n"
      "                           (default 1)\n"
      "  --queue-depth N          queued requests beyond this are rejected\n"
      "                           with HTTP 429 + Retry-After (default 64)\n"
      "  --cache PATH             persist the shared result cache at PATH\n"
      "                           (merge-on-load, atomic multi-process-safe\n"
      "                           save)\n"
      "  --max-request-seconds S  hard per-request deadline (default: none)\n"
      "  --log-level LEVEL        structured-log verbosity on stderr:\n"
      "                           debug | info | warn | error | off\n"
      "                           (default warn; see docs/OBSERVABILITY.md)\n"
      "  --slow-request-seconds S warn-log requests slower than S seconds\n"
      "                           (default 10, 0 = never)\n"
      "  --version                print the library version\n"
      "endpoints: POST /rpc (JSON-RPC 2.0), GET /metrics, GET /status\n"
      "SIGTERM/SIGINT drain gracefully and exit 0.\n");
}

// Signal handlers may only touch lock-free atomics; the main loop polls
// this flag and performs the actual (lock-taking) drain.
volatile std::sig_atomic_t StopFlag = 0;

void onSignal(int) { StopFlag = 1; }

} // namespace

int main(int argc, char **argv) {
  ServerConfig Cfg;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "missing argument after %s\n", A.c_str());
        exit(ExitUsage);
      }
      return argv[++I];
    };
    if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else if (A == "--version") {
      std::printf("checkfenced %s\n", versionString());
      return 0;
    } else if (A == "--port") {
      Cfg.Port = std::atoi(Next());
    } else if (A == "--bind") {
      Cfg.BindAddress = Next();
    } else if (A == "--shards") {
      Cfg.Shards = std::atoi(Next());
    } else if (A == "--jobs") {
      Cfg.JobsPerShard = std::atoi(Next());
    } else if (A == "--queue-depth") {
      Cfg.QueueDepth = std::atoi(Next());
    } else if (A == "--cache") {
      Cfg.CachePath = Next();
    } else if (A == "--max-request-seconds") {
      Cfg.MaxRequestSeconds = std::atof(Next());
    } else if (A == "--log-level") {
      Cfg.LogLevel = Next();
    } else if (A == "--slow-request-seconds") {
      Cfg.SlowRequestSeconds = std::atof(Next());
    } else {
      std::fprintf(stderr, "unknown option %s\n", A.c_str());
      return ExitUsage;
    }
  }
  if (Cfg.Port < 0 || Cfg.Port > 65535) {
    std::fprintf(stderr, "bad --port %d\n", Cfg.Port);
    return ExitUsage;
  }

  CheckServer Server(Cfg);
  std::string Error;
  if (!Server.start(Error)) {
    std::fprintf(stderr, "checkfenced: %s\n", Error.c_str());
    return 1;
  }
  std::printf("checkfenced %s listening on %s:%d (%d shards x %d jobs, "
              "queue %d)\n",
              versionString(), Cfg.BindAddress.c_str(), Server.port(),
              Cfg.Shards < 1 ? 1 : Cfg.Shards,
              Cfg.JobsPerShard < 1 ? 1 : Cfg.JobsPerShard,
              Cfg.QueueDepth);
  std::fflush(stdout);

  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  while (!StopFlag)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::printf("checkfenced: draining...\n");
  std::fflush(stdout);
  Server.requestStop();
  Server.waitStopped();
  ServerStats S = Server.stats();
  std::printf("checkfenced: drained (%llu served, %llu rejected, "
              "%llu cache hits)\n",
              S.Served, S.Rejected,
              static_cast<unsigned long long>(S.Cache.Hits));
  return 0;
}
