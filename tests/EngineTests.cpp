//===--- EngineTests.cpp - session engine and matrix runner tests ----------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// The session engine must be a pure optimization: for any cell it returns
// the same verdict and the same mined observation set as the from-scratch
// pipeline, while keeping one persistent solver per memory model whose
// variable/clause counts only ever grow across the mine/include/probe
// phases and the lazy-unrolling bound iterations.
//
//===----------------------------------------------------------------------===//

#include "engine/CheckSession.h"
#include "engine/MatrixRunner.h"
#include "frontend/Lowering.h"
#include "harness/Catalog.h"
#include "impls/Impls.h"
#include "sat/CnfStore.h"
#include "support/WorkerBudget.h"

#include "checkfence/checkfence.h"

#include "gtest/gtest.h"

#include <atomic>

using namespace checkfence;
using namespace checkfence::checker;
using namespace checkfence::engine;
using namespace checkfence::harness;

namespace {

bool compileInto(const std::string &Source, lsl::Program &Prog) {
  frontend::DiagEngine Diags;
  return frontend::compileC(Source, {}, Prog, Diags);
}

//===----------------------------------------------------------------------===//
// Incremental vs from-scratch equivalence.
//===----------------------------------------------------------------------===//

/// Checks one (source, test) cell under \p Model through both pipelines
/// and asserts identical verdicts and observation sets.
void expectSessionMatchesFresh(const std::string &Source,
                               const std::string &Test,
                               memmodel::ModelParams Model) {
  lsl::Program Prog;
  ASSERT_TRUE(compileInto(Source, Prog));
  TestSpec Spec = testByName(Test);
  std::vector<std::string> Threads = buildTestThreads(Prog, Spec);

  CheckOptions Opts;
  Opts.Model = Model;

  CheckResult Fresh = runCheckFresh(Prog, Threads, Opts);

  CheckSession Session(Opts);
  CheckResult Inc = Session.check(Prog, Threads);

  SCOPED_TRACE(Test + " on " + memmodel::modelName(Model));
  EXPECT_EQ(Inc.Status, Fresh.Status)
      << "session: " << Inc.Message << " / fresh: " << Fresh.Message;
  EXPECT_EQ(Inc.Spec, Fresh.Spec);
  // Note: FinalBounds may legitimately differ - a satisfiable probe's
  // model (and hence which loop instances grow first) depends on solver
  // state. Verdict and observation set may not.
}

TEST(SessionEquivalence, RefQueueT0AllModels) {
  for (memmodel::ModelParams M :
       {memmodel::ModelParams::sc(), memmodel::ModelParams::tso(),
        memmodel::ModelParams::relaxed()})
    expectSessionMatchesFresh(impls::referenceFor("queue"), "T0", M);
}

TEST(SessionEquivalence, RefQueueTi2AllModels) {
  for (memmodel::ModelParams M :
       {memmodel::ModelParams::sc(), memmodel::ModelParams::tso(),
        memmodel::ModelParams::relaxed()})
    expectSessionMatchesFresh(impls::referenceFor("queue"), "Ti2", M);
}

TEST(SessionEquivalence, RefSetS1AllModels) {
  for (memmodel::ModelParams M :
       {memmodel::ModelParams::sc(), memmodel::ModelParams::tso(),
        memmodel::ModelParams::relaxed()})
    expectSessionMatchesFresh(impls::referenceFor("set"), "S1", M);
}

TEST(SessionEquivalence, MsnT0RelaxedWithAndWithoutFences) {
  // A PASS cell with bound growth and a FAIL cell (counterexample path).
  expectSessionMatchesFresh(impls::sourceFor("msn"), "T0",
                            memmodel::ModelParams::relaxed());

  frontend::LoweringOptions LO;
  LO.StripFences = true;
  frontend::DiagEngine Diags;
  lsl::Program Stripped;
  ASSERT_TRUE(frontend::compileC(impls::sourceFor("msn"), {}, Stripped,
                                 Diags, LO));
  TestSpec Spec = testByName("T0");
  std::vector<std::string> Threads = buildTestThreads(Stripped, Spec);
  CheckOptions Opts;
  Opts.Model = memmodel::ModelParams::relaxed();
  CheckResult Fresh = runCheckFresh(Stripped, Threads, Opts);
  CheckSession Session(Opts);
  CheckResult Inc = Session.check(Stripped, Threads);
  EXPECT_EQ(Fresh.Status, CheckStatus::Fail);
  EXPECT_EQ(Inc.Status, CheckStatus::Fail);
  ASSERT_TRUE(Inc.Counterexample.has_value());
  // The specific counterexample model may differ between pipelines, but
  // both must exhibit an observation outside the (identical) spec.
  EXPECT_EQ(Inc.Spec, Fresh.Spec);
  EXPECT_EQ(Inc.Spec.count(Inc.Counterexample->Obs), 0u);
}

TEST(SessionEquivalence, RefspecModeMatches) {
  // Refset mining (Fig. 11a): spec mined from the reference queue while
  // checking msn. Exercises the second persistent context's probe reuse.
  lsl::Program Impl, Ref;
  ASSERT_TRUE(compileInto(impls::sourceFor("msn"), Impl));
  ASSERT_TRUE(compileInto(impls::referenceFor("queue"), Ref));
  TestSpec Spec = testByName("T0");
  std::vector<std::string> Threads = buildTestThreads(Impl, Spec);
  std::vector<std::string> RefThreads = buildTestThreads(Ref, Spec);
  ASSERT_EQ(Threads, RefThreads);

  CheckOptions Opts;
  Opts.Model = memmodel::ModelParams::relaxed();
  CheckResult Fresh = runCheckFresh(Impl, Threads, Opts, &Ref);
  CheckSession Session(Opts);
  CheckResult Inc = Session.check(Impl, Threads, &Ref);
  EXPECT_EQ(Inc.Status, Fresh.Status)
      << "session: " << Inc.Message << " / fresh: " << Fresh.Message;
  EXPECT_EQ(Inc.Spec, Fresh.Spec);
}

//===----------------------------------------------------------------------===//
// The no-reset property: one persistent solver across phases and bounds.
//===----------------------------------------------------------------------===//

TEST(SessionSolverGrowth, VarsAndClausesGrowMonotonically) {
  // msn T0 on Relaxed needs a bound growth round (retry loops), so the
  // session runs >= 2 bound iterations and >= 2 inclusion encodings - all
  // on the same target-model solver.
  lsl::Program Prog;
  ASSERT_TRUE(compileInto(impls::sourceFor("msn"), Prog));
  TestSpec Spec = testByName("T0");
  std::vector<std::string> Threads = buildTestThreads(Prog, Spec);

  CheckOptions Opts;
  Opts.Model = memmodel::ModelParams::relaxed();
  CheckSession Session(Opts);
  CheckResult R = Session.check(Prog, Threads);
  ASSERT_EQ(R.Status, CheckStatus::Pass) << R.Message;

  const std::vector<SessionSnapshot> &Snaps = Session.snapshots();
  ASSERT_GE(Snaps.size(), 2u) << "expected a bound-growth round";
  for (size_t I = 1; I < Snaps.size(); ++I) {
    // Monotone, never reset.
    EXPECT_GE(Snaps[I].CheckVars, Snaps[I - 1].CheckVars);
    EXPECT_GE(Snaps[I].CheckClauses, Snaps[I - 1].CheckClauses);
    EXPECT_GE(Snaps[I].MineVars, Snaps[I - 1].MineVars);
    EXPECT_GE(Snaps[I].MineClauses, Snaps[I - 1].MineClauses);
  }
  // The growth round appended a re-unrolled encoding: strictly more vars.
  EXPECT_GT(Snaps.back().CheckVars, Snaps.front().CheckVars);

  // The snapshots describe the live solvers, not copies.
  EXPECT_EQ(Session.checkContext().solver().numVars(),
            Snaps.back().CheckVars);
  EXPECT_EQ(Session.mineContext().solver().numVars(),
            Snaps.back().MineVars);
  // Inclusion + probe + re-encoded inclusion all went through one context.
  EXPECT_GE(Session.checkContext().numEncodings(), 2u);
}

//===----------------------------------------------------------------------===//
// MatrixRunner: determinism and parallel scheduling.
//===----------------------------------------------------------------------===//

TEST(MatrixRunner, TimingFreeReportIsIdenticalAcrossJobCounts) {
  std::vector<MatrixCell> Cells = expandMatrix(
      {"ms2", "msn"}, {"T0"},
      {memmodel::ModelParams::sc(), memmodel::ModelParams::relaxed()});
  ASSERT_EQ(Cells.size(), 4u);

  RunOptions Base;
  MatrixReport Seq = MatrixRunner(1).run(Cells, catalogCellRunner(Base));
  MatrixReport Par = MatrixRunner(4).run(Cells, catalogCellRunner(Base));

  ASSERT_EQ(Seq.Cells.size(), Par.Cells.size());
  EXPECT_TRUE(Seq.allCompleted());
  EXPECT_TRUE(Par.allCompleted());
  EXPECT_EQ(Seq.json(/*IncludeTimings=*/false),
            Par.json(/*IncludeTimings=*/false));
  // Cell order follows the input matrix regardless of completion order.
  for (size_t I = 0; I < Cells.size(); ++I) {
    EXPECT_EQ(Par.Cells[I].Cell.label(), Cells[I].label());
    EXPECT_EQ(Par.Cells[I].Result.Status, Seq.Cells[I].Result.Status);
  }
}

TEST(MatrixRunner, ExpandFiltersKindMismatches) {
  // Explicit tests that do not fit an implementation's kind are dropped.
  std::vector<MatrixCell> Cells = expandMatrix(
      {"msn", "lazylist"}, {"T0", "Sac"}, {memmodel::ModelParams::relaxed()});
  ASSERT_EQ(Cells.size(), 2u);
  EXPECT_EQ(Cells[0].label(), "msn:T0:relaxed");
  EXPECT_EQ(Cells[1].label(), "lazylist:Sac:relaxed");
}

TEST(MatrixRunner, UnknownNamesBecomeErrorCells) {
  std::vector<MatrixCell> Cells(1);
  Cells[0].Impl = "no-such-impl";
  Cells[0].Test = "T0";
  MatrixReport Report =
      MatrixRunner(2).run(Cells, catalogCellRunner(RunOptions()));
  ASSERT_EQ(Report.Cells.size(), 1u);
  EXPECT_EQ(Report.Cells[0].Result.Status, CheckStatus::Error);
  EXPECT_FALSE(Report.allCompleted());
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> Hits(257);
  for (auto &H : Hits)
    H = 0;
  parallelFor(8, Hits.size(), [&](size_t I) { ++Hits[I]; });
  for (size_t I = 0; I < Hits.size(); ++I)
    EXPECT_EQ(Hits[I], 1) << "index " << I;
}

//===----------------------------------------------------------------------===//
// The solver portfolio: racing must be a pure optimization.
//===----------------------------------------------------------------------===//

/// Runs one cell serially and raced (width 4, three extra workers) and
/// asserts identical verdicts and mined observation sets.
void expectPortfolioMatchesSerial(const std::string &Impl,
                                  const std::string &Test,
                                  memmodel::ModelParams Model) {
  lsl::Program Prog;
  ASSERT_TRUE(compileInto(impls::sourceFor(Impl), Prog));
  std::vector<std::string> Threads =
      buildTestThreads(Prog, testByName(Test));

  CheckOptions Opts;
  Opts.Model = Model;
  CheckSession Serial(Opts);
  CheckResult RS = Serial.check(Prog, Threads);

  support::WorkerBudget Budget(3);
  CheckOptions Raced = Opts;
  Raced.PortfolioWidth = 4;
  Raced.Budget = &Budget;
  CheckSession Racing(Raced);
  CheckResult RR = Racing.check(Prog, Threads);

  SCOPED_TRACE(Impl + "/" + Test + " on " + memmodel::modelName(Model));
  EXPECT_EQ(RR.Status, RS.Status)
      << "raced: " << RR.Message << " / serial: " << RS.Message;
  EXPECT_EQ(RR.Spec, RS.Spec);
  EXPECT_EQ(Budget.available(), Budget.totalWorkers())
      << "portfolio leaked budget slots";
  if (RS.Status == CheckStatus::Fail) {
    // Canonical artifacts: the counterexample is decoded from the shadow
    // solver, so even the specific witness is width-invariant.
    ASSERT_TRUE(RR.Counterexample.has_value());
    ASSERT_TRUE(RS.Counterexample.has_value());
    EXPECT_EQ(RR.Counterexample->Obs, RS.Counterexample->Obs);
  }
}

TEST(PortfolioEquivalence, SerialAndRacedAgreeAcrossLattice) {
  // Catalog implementations x lattice points, covering Pass cells with
  // bound growth (msn/T0 relaxed), set-kind cells, and the strongest /
  // weakest models.
  for (memmodel::ModelParams M :
       {memmodel::ModelParams::sc(), memmodel::ModelParams::tso(),
        memmodel::ModelParams::relaxed()}) {
    expectPortfolioMatchesSerial("msn", "T0", M);
    expectPortfolioMatchesSerial("lazylist", "Sac", M);
  }
  expectPortfolioMatchesSerial("ms2", "Tpc2",
                               memmodel::ModelParams::pso());
}

TEST(PortfolioEquivalence, FailingCellKeepsItsCounterexampleWhenRaced) {
  // A Fail cell: fences stripped under Relaxed. The raced run must
  // reproduce the serial counterexample observation exactly.
  frontend::LoweringOptions LO;
  LO.StripFences = true;
  frontend::DiagEngine Diags;
  lsl::Program Stripped;
  ASSERT_TRUE(frontend::compileC(impls::sourceFor("msn"), {}, Stripped,
                                 Diags, LO));
  std::vector<std::string> Threads =
      buildTestThreads(Stripped, testByName("T0"));

  CheckOptions Opts;
  Opts.Model = memmodel::ModelParams::relaxed();
  CheckSession Serial(Opts);
  CheckResult RS = Serial.check(Stripped, Threads);
  ASSERT_EQ(RS.Status, CheckStatus::Fail);

  support::WorkerBudget Budget(3);
  CheckOptions Raced = Opts;
  Raced.PortfolioWidth = 4;
  Raced.Budget = &Budget;
  CheckSession Racing(Raced);
  CheckResult RR = Racing.check(Stripped, Threads);
  ASSERT_EQ(RR.Status, CheckStatus::Fail);
  ASSERT_TRUE(RR.Counterexample.has_value());
  EXPECT_EQ(RR.Counterexample->Obs, RS.Counterexample->Obs);
  ASSERT_EQ(RR.Counterexample->MemoryOrder.size(),
            RS.Counterexample->MemoryOrder.size());
  for (size_t I = 0; I < RS.Counterexample->MemoryOrder.size(); ++I) {
    EXPECT_EQ(RR.Counterexample->MemoryOrder[I].Thread,
              RS.Counterexample->MemoryOrder[I].Thread);
    EXPECT_EQ(RR.Counterexample->MemoryOrder[I].PoIndex,
              RS.Counterexample->MemoryOrder[I].PoIndex);
  }
}

TEST(PortfolioEquivalence, TimingFreeJsonIsByteIdenticalAcrossWidths) {
  // Through the public API: the full rendered report (verdict, spec,
  // counterexample, bounds - everything except timings and portfolio
  // counters) must not depend on the portfolio width. Each width gets
  // its own Verifier: a pooled session's solver state accumulates
  // across checks, so only first-check-on-a-fresh-session runs are
  // comparable byte for byte.
  for (const char *ImplTest : {"pass", "fail"}) {
    bool Fail = std::string(ImplTest) == "fail";
    auto Run = [&](int Width) {
      Request R = Request::check("msn", "T0").model("relaxed").noCache();
      if (Fail)
        R.stripFences();
      Verifier V;
      return V.check(R.jobs(4).portfolioWidth(Width));
    };
    Result W1 = Run(1);
    Result W2 = Run(2);
    Result W4 = Run(4);
    ASSERT_NE(W1.Verdict, Status::Error) << W1.Message;
    EXPECT_EQ(W1.json(/*IncludeTimings=*/false),
              W2.json(/*IncludeTimings=*/false));
    EXPECT_EQ(W1.json(/*IncludeTimings=*/false),
              W4.json(/*IncludeTimings=*/false));
  }
}

//===----------------------------------------------------------------------===//
// WorkerBudget: one shared allowance, no oversubscription.
//===----------------------------------------------------------------------===//

TEST(WorkerBudget, AcquireReleaseAccounting) {
  support::WorkerBudget B(3);
  EXPECT_EQ(B.totalWorkers(), 3);
  EXPECT_EQ(B.tryAcquire(2), 2);
  EXPECT_EQ(B.tryAcquire(5), 1) << "must clamp to what is available";
  EXPECT_EQ(B.tryAcquire(1), 0) << "drained budget must not block";
  B.release(3);
  EXPECT_EQ(B.available(), 3);
  EXPECT_EQ(B.peakHeld(), 3);
  // Degenerate budgets are inert.
  support::WorkerBudget Zero(0);
  EXPECT_EQ(Zero.tryAcquire(4), 0);
}

TEST(WorkerBudget, MatrixAndPortfolioShareOneAllowance) {
  // Regression test for the --jobs oversubscription bug: 4 cells with
  // width-4 portfolios under a 4-worker request must never hold more
  // than 3 extra threads in total (not cells x width).
  std::vector<MatrixCell> Cells = expandMatrix(
      {"ms2", "msn"}, {"T0"},
      {memmodel::ModelParams::sc(), memmodel::ModelParams::relaxed()});
  ASSERT_EQ(Cells.size(), 4u);

  support::WorkerBudget Budget(3);
  RunOptions Base;
  Base.Check.PortfolioWidth = 4;
  Base.Check.Budget = &Budget;
  MatrixReport Par = MatrixRunner(4).withBudget(&Budget).run(
      Cells, catalogCellRunner(Base));
  EXPECT_TRUE(Par.allCompleted());
  EXPECT_LE(Budget.peakHeld(), Budget.totalWorkers());
  EXPECT_EQ(Budget.available(), Budget.totalWorkers())
      << "some layer leaked worker slots";

  // And the shared-budget run is still deterministic against serial.
  MatrixReport Seq = MatrixRunner(1).run(Cells, catalogCellRunner(RunOptions()));
  EXPECT_EQ(Seq.json(/*IncludeTimings=*/false),
            Par.json(/*IncludeTimings=*/false));
}

//===----------------------------------------------------------------------===//
// The solver-free encoding artifact.
//===----------------------------------------------------------------------===//

TEST(ProblemEncodingArtifact, CnfStoreReplayReproducesTheProblem) {
  lsl::Program Prog;
  ASSERT_TRUE(compileInto(impls::referenceFor("queue"), Prog));
  TestSpec Spec = testByName("T0");
  std::vector<std::string> Threads = buildTestThreads(Prog, Spec);

  ProblemConfig Cfg;
  Cfg.Model = memmodel::ModelParams::serial();

  // Capture the encoding into a pure store - no solver involved.
  sat::CnfStore Store;
  encode::CnfBuilder Cnf(Store);
  ProblemEncoding Enc(Cnf, Prog, Threads, {}, Cfg);
  ASSERT_TRUE(Enc.ok()) << Enc.error();
  EXPECT_GT(Store.numVars(), 0);
  EXPECT_GT(Store.numClauses(), 0u);

  // Replay preserves variable numbering, so the artifact's decode maps
  // apply to the replayed solver's models.
  sat::Solver S;
  ASSERT_TRUE(Store.replayInto(S));
  EXPECT_EQ(S.numVars(), Store.numVars());
  ASSERT_EQ(S.solve(Enc.withinBoundsAssumptions()), sat::SolveResult::Sat);
  Observation O = Enc.decodeObservation(S);
  EXPECT_EQ(O.Values.size(), Enc.observationLabels().size());

  // The probe activation works on the replayed solver too: the reference
  // queue's primed-free T0 has no unrollable loops beyond its bounds, so
  // the probe must be unsatisfiable.
  EXPECT_EQ(S.solve(Enc.probeAssumptions()), sat::SolveResult::Unsat);
}

} // namespace
