//===--- ServerTests.cpp - the checkfenced daemon -----------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// Covers the verification server (include/checkfence/Server.h) and its
// client (Remote.h) against an in-process daemon on an ephemeral port:
// remote-vs-local result identity for every request kind, admission
// control (429 + Retry-After), per-request deadline clamping, client
// disconnect cancellation, the /metrics and /status surfaces, graceful
// drain, and cross-restart cache persistence.
//
//===----------------------------------------------------------------------===//

#include "checkfence/checkfence.h"

#include "server/Http.h"
#include "server/Wire.h"
#include "support/JsonParse.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

using namespace checkfence;
using namespace checkfence::server;

namespace {

std::string urlFor(const CheckServer &S) {
  return "http://127.0.0.1:" + std::to_string(S.port());
}

/// A raw client connection that can leave a request pending (the decoded
/// clients always block for the response; admission and disconnect tests
/// need sockets that don't).
struct RawConn {
  int Fd = -1;

  bool connectTo(int Port) {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0)
      return false;
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(static_cast<uint16_t>(Port));
    inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
    return ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                     sizeof(Addr)) == 0;
  }

  bool sendRpc(const std::string &Method, const Request &Req, int Id) {
    std::string Body = rpcRequest(Method, encodeRequest(Req), Id);
    std::string Msg = "POST /rpc HTTP/1.1\r\nHost: x\r\nContent-Length: " +
                      std::to_string(Body.size()) + "\r\n\r\n" + Body;
    return ::send(Fd, Msg.data(), Msg.size(), 0) ==
           static_cast<ssize_t>(Msg.size());
  }

  void close() {
    if (Fd >= 0)
      ::close(Fd);
    Fd = -1;
  }

  ~RawConn() { close(); }
};

/// Polls /status until \p Pred(status body) holds (or ~5s elapse).
template <typename Pred>
bool waitStatus(const CheckServer &S, Pred P) {
  for (int I = 0; I < 250; ++I) {
    HttpResult H = httpRequest("127.0.0.1", S.port(), "GET", "/status",
                               "", {});
    if (H.Ok && P(H.Body))
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

bool contains(const std::string &Haystack, const std::string &Needle) {
  return Haystack.find(Needle) != std::string::npos;
}

//===----------------------------------------------------------------------===//
// Reachability and the version probe
//===----------------------------------------------------------------------===//

TEST(Server, StartsOnEphemeralPortAndAnswersVersion) {
  ServerConfig Cfg;
  Cfg.Port = 0;
  CheckServer S(Cfg);
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;
  EXPECT_GT(S.port(), 0);

  RemoteVerifier RV(urlFor(S));
  std::string Version;
  int Schema = 0;
  RemoteStatus St = RV.version(Version, Schema);
  ASSERT_TRUE(St) << St.Error;
  EXPECT_EQ(Version, versionString());
  EXPECT_EQ(Schema, JsonSchemaVersion);
}

TEST(Server, ConnectionRefusedIsTransportError) {
  // Port 1 on loopback is never a checkfenced.
  RemoteVerifier RV("http://127.0.0.1:1");
  std::string Version;
  int Schema = 0;
  RemoteStatus St = RV.version(Version, Schema);
  EXPECT_FALSE(St);
  EXPECT_FALSE(St.Error.empty());
  EXPECT_EQ(St.HttpStatus, 0);
}

TEST(Server, BadUrlFailsWithoutConnecting) {
  RemoteVerifier RV("https://127.0.0.1:1");
  std::string Version;
  int Schema = 0;
  EXPECT_FALSE(RV.version(Version, Schema));
}

//===----------------------------------------------------------------------===//
// Remote results match local runs (the byte-identity contract)
//===----------------------------------------------------------------------===//

struct IdentityFixture : ::testing::Test {
  ServerConfig Cfg;
  CheckServer S{[] {
    ServerConfig C;
    C.Port = 0;
    C.Shards = 2;
    return C;
  }()};
  Verifier Local;

  void SetUp() override {
    std::string Error;
    ASSERT_TRUE(S.start(Error)) << Error;
  }
};

TEST_F(IdentityFixture, CheckRoundTripsEveryField) {
  Request Req = Request::check("snark", "D0").model("sc");
  Result L = Local.check(Req);

  RemoteVerifier RV(urlFor(S));
  Result R;
  RemoteStatus St = RV.check(Req, R);
  ASSERT_TRUE(St) << St.Error;

  EXPECT_EQ(R.Verdict, L.Verdict);
  EXPECT_EQ(R.Message, L.Message);
  EXPECT_EQ(R.Impl, L.Impl);
  EXPECT_EQ(R.Test, L.Test);
  EXPECT_EQ(R.Model, L.Model);
  EXPECT_EQ(R.Observations, L.Observations);
  EXPECT_EQ(R.HasCounterexample, L.HasCounterexample);
  EXPECT_EQ(R.CounterexampleTrace, L.CounterexampleTrace);
  EXPECT_EQ(R.CounterexampleColumns, L.CounterexampleColumns);
  EXPECT_EQ(R.CounterexampleObservation, L.CounterexampleObservation);
  EXPECT_EQ(R.Stats.ObservationCount, L.Stats.ObservationCount);
  EXPECT_EQ(R.Stats.UnrolledInstrs, L.Stats.UnrolledInstrs);
  EXPECT_EQ(R.Stats.SatVars, L.Stats.SatVars);
  // The timing-free JSON - the schema consumers diff - is byte-equal.
  EXPECT_EQ(R.json(false), L.json(false));
}

TEST_F(IdentityFixture, MatrixReportMatchesLocal) {
  Request Req = Request::matrix()
                    .impls({"ms2"})
                    .tests({"T0"})
                    .models({"sc", "tso"});
  Report L = Local.matrix(Req);
  ASSERT_TRUE(L.ok());

  RemoteVerifier RV(urlFor(S));
  RemoteReport R;
  RemoteStatus St = RV.matrix(Req, R);
  ASSERT_TRUE(St) << St.Error;
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.JsonNoTimings, L.json(false));
  EXPECT_EQ(R.AllCompleted, L.allCompleted());
  EXPECT_EQ(R.CellCount, L.cellCount());
  EXPECT_EQ(R.ErrorCells, L.count(Status::Error));
  EXPECT_EQ(R.CancelledCells, L.count(Status::Cancelled));
}

TEST_F(IdentityFixture, AnalysisMatchesLocalByteForByte) {
  Request Req = Request::check("ms2", "T0");
  Req.RequestKind = Request::Kind::Analyze;
  AnalysisOutcome L = Local.analyze(Req);
  ASSERT_TRUE(L.Ok) << L.Error;

  RemoteVerifier RV(urlFor(S));
  RemoteAnalysis R;
  RemoteStatus St = RV.analyze(Req, R);
  ASSERT_TRUE(St) << St.Error;
  ASSERT_TRUE(R.Ok) << R.Error;
  // The analysis is static: no timings anywhere, both surfaces must be
  // byte-identical.
  EXPECT_EQ(R.Table, L.table());
  EXPECT_EQ(R.Json, L.json());
}

TEST_F(IdentityFixture, ExploreMatchesLocal) {
  Request Req = Request::check();
  Req.RequestKind = Request::Kind::Explore;
  Req.seed(7).budget(10);
  ExploreOutcome L = Local.explore(Req);
  ASSERT_TRUE(L.ok()) << L.error();

  RemoteVerifier RV(urlFor(S));
  RemoteExplore R;
  RemoteStatus St = RV.explore(Req, R);
  ASSERT_TRUE(St) << St.Error;
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Seed, L.seed());
  EXPECT_EQ(R.Generated, L.generated());
  EXPECT_EQ(R.Run, L.run());
  EXPECT_EQ(R.Divergences.size(), L.divergences().size());
  EXPECT_EQ(R.JsonNoTimings, L.json(false));
}

TEST_F(IdentityFixture, SynthesisOutcomeRoundTrips) {
  Request Req = Request::check("ms2", "T0").model("sc");
  Req.RequestKind = Request::Kind::Synthesis;
  SynthOutcome L = Local.synthesize(Req);

  RemoteVerifier RV(urlFor(S));
  RemoteSynth R;
  RemoteStatus St = RV.synthesize(Req, R);
  ASSERT_TRUE(St) << St.Error;
  EXPECT_EQ(R.Outcome.Success, L.Success);
  EXPECT_EQ(R.Outcome.Cancelled, L.Cancelled);
  EXPECT_EQ(R.Outcome.Message, L.Message);
  EXPECT_EQ(R.Outcome.Fences.size(), L.Fences.size());
  EXPECT_EQ(R.Outcome.Log, L.Log);
}

//===----------------------------------------------------------------------===//
// Server policy
//===----------------------------------------------------------------------===//

TEST(ServerPolicy, MaxRequestSecondsClampsMissingDeadline) {
  ServerConfig Cfg;
  Cfg.Port = 0;
  Cfg.MaxRequestSeconds = 1e-9; // expires at the first phase boundary
  CheckServer S(Cfg);
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;

  RemoteVerifier RV(urlFor(S));
  Result R;
  // The client sent no deadline at all; the server imposes its own.
  RemoteStatus St = RV.check(Request::check("ms2", "Tpc2").model("sc"), R);
  ASSERT_TRUE(St) << St.Error;
  EXPECT_EQ(R.Verdict, Status::Cancelled);
  EXPECT_EQ(R.Message, "deadline exceeded");
  EXPECT_EQ(S.stats().Cancelled, 1u);
}

TEST(ServerPolicy, ShardsShareOneResultCache) {
  ServerConfig Cfg;
  Cfg.Port = 0;
  Cfg.Shards = 2;
  CheckServer S(Cfg);
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;

  Request Req = Request::check("ms2", "T0").model("tso");
  RemoteVerifier RV(urlFor(S));
  Result First, Second;
  ASSERT_TRUE(RV.check(Req, First));
  ASSERT_TRUE(RV.check(Req, Second));
  EXPECT_FALSE(First.FromCache);
  EXPECT_TRUE(Second.FromCache);
  // Cache hits strip timings deterministically: both runs report the
  // same timing-free JSON.
  EXPECT_EQ(First.json(false), Second.json(false));
  ServerStats Stats = S.stats();
  EXPECT_GE(Stats.Cache.Hits, 1u);
  EXPECT_GE(Stats.Cache.Entries, 1u);
}

//===----------------------------------------------------------------------===//
// Admission control and disconnect cancellation
//===----------------------------------------------------------------------===//

TEST(ServerQueue, FullQueueRejectsWith429AndDisconnectCancels) {
  ServerConfig Cfg;
  Cfg.Port = 0;
  Cfg.Shards = 1;
  Cfg.QueueDepth = 1;
  CheckServer S(Cfg);
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;

  // Occupy the single shard with an explore run big enough to outlast
  // the admission checks below (explore polls its cancel token between
  // scenarios, so the hang-up at the end keeps the test bounded).
  Request Slow = Request::check();
  Slow.RequestKind = Request::Kind::Explore;
  Slow.seed(1).budget(5000);
  RawConn C1;
  ASSERT_TRUE(C1.connectTo(S.port()));
  ASSERT_TRUE(C1.sendRpc("checkfence.explore", Slow, 1));
  ASSERT_TRUE(waitStatus(
      S, [](const std::string &B) { return contains(B, "\"inFlight\": 1"); }));

  // Fill the one queue slot.
  RawConn C2;
  ASSERT_TRUE(C2.connectTo(S.port()));
  ASSERT_TRUE(C2.sendRpc("checkfence.check",
                         Request::check("ms2", "T0").model("sc"), 2));
  ASSERT_TRUE(waitStatus(
      S, [](const std::string &B) { return contains(B, "\"queued\": 1"); }));

  // The next request must be turned away at admission.
  RemoteVerifier RV(urlFor(S));
  Result R;
  RemoteStatus St = RV.check(Request::check("ms2", "T0").model("tso"), R);
  EXPECT_FALSE(St);
  EXPECT_EQ(St.HttpStatus, 429);
  EXPECT_GE(St.RetryAfterSeconds, 1);
  EXPECT_TRUE(contains(St.Error, "queue"));
  EXPECT_GE(S.stats().Rejected, 1u);

  // Hanging up on the in-flight explore cancels it cooperatively and
  // frees the shard for the queued check.
  C1.close();
  ASSERT_TRUE(waitStatus(S, [](const std::string &B) {
    return contains(B, "\"cancelled\": 1") && contains(B, "\"queued\": 0");
  }));
  EXPECT_GE(S.stats().Cancelled, 1u);
}

//===----------------------------------------------------------------------===//
// Observability surfaces
//===----------------------------------------------------------------------===//

TEST(ServerObservability, MetricsAndStatusReflectTraffic) {
  ServerConfig Cfg;
  Cfg.Port = 0;
  CheckServer S(Cfg);
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;

  RemoteVerifier RV(urlFor(S));
  Result R;
  ASSERT_TRUE(RV.check(Request::check("ms2", "T0").model("sc"), R));

  HttpResult M = httpRequest("127.0.0.1", S.port(), "GET", "/metrics",
                             "", {});
  ASSERT_TRUE(M.Ok) << M.Error;
  EXPECT_EQ(M.StatusCode, 200);
  EXPECT_TRUE(contains(M.Body, "checkfence_requests_served_total 1"));
  EXPECT_TRUE(contains(M.Body, "checkfence_cache_misses_total 1"));
  EXPECT_TRUE(contains(M.Body, "checkfence_queue_depth 0"));
  EXPECT_TRUE(contains(M.Body, "# TYPE checkfence_inflight gauge"));

  HttpResult St = httpRequest("127.0.0.1", S.port(), "GET", "/status",
                              "", {});
  ASSERT_TRUE(St.Ok) << St.Error;
  support::JsonValue Doc;
  std::string ParseError;
  ASSERT_TRUE(support::parseJson(St.Body, Doc, ParseError)) << ParseError;
  ASSERT_TRUE(Doc.isObject());
  EXPECT_EQ(Doc.find("version")->asString(), versionString());
  EXPECT_EQ(Doc.find("served")->asI64(), 1);
  EXPECT_EQ(Doc.find("draining")->asBool(), false);
  EXPECT_TRUE(Doc.find("cache")->isObject());
  EXPECT_TRUE(Doc.find("pool")->isObject());
}

TEST(ServerObservability, ProtocolErrorsAreWellFormed) {
  ServerConfig Cfg;
  Cfg.Port = 0;
  CheckServer S(Cfg);
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;
  int Port = S.port();

  HttpResult H = httpRequest("127.0.0.1", Port, "POST", "/rpc",
                             "this is not json", {});
  ASSERT_TRUE(H.Ok) << H.Error;
  EXPECT_EQ(H.StatusCode, 400);
  EXPECT_TRUE(contains(H.Body, "-32700"));

  H = httpRequest("127.0.0.1", Port, "POST", "/rpc",
                  rpcRequest("checkfence.nope", "{}", 1), {});
  ASSERT_TRUE(H.Ok);
  EXPECT_EQ(H.StatusCode, 404);
  EXPECT_TRUE(contains(H.Body, "-32601"));

  H = httpRequest("127.0.0.1", Port, "GET", "/nope", "", {});
  ASSERT_TRUE(H.Ok);
  EXPECT_EQ(H.StatusCode, 404);

  H = httpRequest("127.0.0.1", Port, "GET", "/rpc", "", {});
  ASSERT_TRUE(H.Ok);
  EXPECT_EQ(H.StatusCode, 405);
}

//===----------------------------------------------------------------------===//
// Drain and persistence
//===----------------------------------------------------------------------===//

TEST(ServerDrain, GracefulStopPersistsCacheAcrossRestart) {
  std::string CachePath = testing::TempDir() + "cf_server_cache.txt";
  std::remove(CachePath.c_str());

  Request Req = Request::check("ms2", "T0").model("sc");
  {
    ServerConfig Cfg;
    Cfg.Port = 0;
    Cfg.CachePath = CachePath;
    CheckServer S(Cfg);
    std::string Error;
    ASSERT_TRUE(S.start(Error)) << Error;
    RemoteVerifier RV(urlFor(S));
    Result R;
    ASSERT_TRUE(RV.check(Req, R));
    EXPECT_FALSE(R.FromCache);
    S.requestStop();
    S.waitStopped();
  } // destructor after an explicit stop must be a no-op

  ServerConfig Cfg;
  Cfg.Port = 0;
  Cfg.CachePath = CachePath;
  CheckServer S2(Cfg);
  std::string Error;
  ASSERT_TRUE(S2.start(Error)) << Error;
  RemoteVerifier RV(urlFor(S2));
  Result R;
  ASSERT_TRUE(RV.check(Req, R));
  EXPECT_TRUE(R.FromCache);
  EXPECT_GE(S2.stats().Cache.Hits, 1u);
  std::remove(CachePath.c_str());
}

TEST(ServerDrain, StoppedServerRefusesNewConnections) {
  ServerConfig Cfg;
  Cfg.Port = 0;
  CheckServer S(Cfg);
  std::string Error;
  ASSERT_TRUE(S.start(Error)) << Error;
  int Port = S.port();
  S.requestStop();
  S.waitStopped();
  EXPECT_TRUE(S.stopRequested());

  RawConn C;
  EXPECT_FALSE(C.connectTo(Port));
}

} // namespace
