//===--- ObsTests.cpp - tracing, metrics, and logging -------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// Covers the observability layer (src/obs/): the span tracer (valid
// Chrome trace JSON, balanced nesting, deterministic names, zero
// allocation when disabled, cross-thread propagation, the wire
// round-trip), the metrics registry (Prometheus rendering, histogram
// bucket/quantile semantics, concurrent observation), the leveled
// logger, and the end-to-end invariants: timing-free reports are
// byte-identical with tracing on or off, and a remote request returns
// the server's spans via the X-Checkfence-Trace round-trip.
//
//===----------------------------------------------------------------------===//

#include "checkfence/checkfence.h"

#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "server/Http.h"
#include "support/JsonParse.h"

#include <algorithm>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace checkfence;

// Allocation counter for the zero-cost-when-disabled test. Counting is
// process-wide but the assertion only compares a delta on one thread
// while no other test runs, so background noise is not an issue (gtest
// runs tests sequentially within one binary).
static std::atomic<size_t> GAllocCount{0};

void *operator new(size_t N) {
  GAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(N ? N : 1))
    return P;
  throw std::bad_alloc();
}

void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, size_t) noexcept { std::free(P); }

namespace {

//===----------------------------------------------------------------------===//
// Tracer
//===----------------------------------------------------------------------===//

TEST(Trace, DisabledByDefault) {
  EXPECT_EQ(obs::currentTracer(), nullptr);
  obs::Span S("test", "ignored");
  EXPECT_FALSE(S.active());
}

TEST(Trace, DisabledSpanAllocatesNothing) {
  ASSERT_EQ(obs::currentTracer(), nullptr);
  size_t Before = GAllocCount.load(std::memory_order_relaxed);
  for (int I = 0; I < 100; ++I) {
    obs::Span S("test", "static-name");
    obs::Span L("test", [] { return std::string(256, 'x'); });
    // The active() guard is the idiom for args: the JSON string is only
    // built when a tracer is installed.
    if (S.active())
      S.args("{\"would\": \"allocate\"}");
  }
  EXPECT_EQ(GAllocCount.load(std::memory_order_relaxed), Before);
}

TEST(Trace, LazyNameOnlyRunsWhenEnabled) {
  int Calls = 0;
  {
    obs::Span S("test", [&] {
      ++Calls;
      return std::string("lazy");
    });
  }
  EXPECT_EQ(Calls, 0);
  obs::Tracer T;
  obs::TraceContext Ctx(&T);
  {
    obs::Span S("test", [&] {
      ++Calls;
      return std::string("lazy");
    });
  }
  EXPECT_EQ(Calls, 1);
  ASSERT_EQ(T.eventCount(), 1u);
  EXPECT_EQ(T.events()[0].Name, "lazy");
}

TEST(Trace, RecordsBalancedNestedSpans) {
  obs::Tracer T;
  {
    obs::TraceContext Ctx(&T);
    obs::Span Outer("test", "outer");
    {
      obs::Span Inner("test", "inner");
    }
  }
  std::vector<obs::TraceEvent> Evs = T.events();
  ASSERT_EQ(Evs.size(), 2u);
  // Same thread, sorted by start: outer starts first and contains inner.
  EXPECT_EQ(Evs[0].Name, "outer");
  EXPECT_EQ(Evs[1].Name, "inner");
  EXPECT_EQ(Evs[0].Tid, Evs[1].Tid);
  EXPECT_LE(Evs[0].StartNs, Evs[1].StartNs);
  EXPECT_GE(Evs[0].StartNs + Evs[0].DurNs, Evs[1].StartNs + Evs[1].DurNs);
}

TEST(Trace, NullContextIsANoop) {
  obs::Tracer T;
  obs::TraceContext Outer(&T);
  {
    // Installing "no tracer" must not displace the enclosing tracer:
    // this is what lets the Verifier's inert trace scope compose with a
    // server-installed per-request tracer.
    obs::TraceContext Inner(nullptr);
    obs::Span S("test", "inside-null-context");
  }
  EXPECT_EQ(T.eventCount(), 1u);
}

TEST(Trace, JsonIsAValidChromeTraceDocument) {
  obs::Tracer T;
  {
    obs::TraceContext Ctx(&T);
    obs::Span S("cat1", "span-one");
    obs::Span S2("cat2", "span-two");
    S2.args("{\"round\": 3}");
  }
  support::JsonValue Doc;
  std::string Err;
  ASSERT_TRUE(support::parseJson(T.json(), Doc, Err)) << Err;
  ASSERT_TRUE(Doc.isObject());
  const support::JsonValue *Evs = Doc.find("traceEvents");
  ASSERT_NE(Evs, nullptr);
  ASSERT_TRUE(Evs->isArray());
  size_t Complete = 0, Meta = 0;
  for (const support::JsonValue &E : Evs->Items) {
    const support::JsonValue *Ph = E.find("ph");
    ASSERT_NE(Ph, nullptr);
    if (Ph->asString() == "X") {
      ++Complete;
      EXPECT_NE(E.find("name"), nullptr);
      EXPECT_NE(E.find("ts"), nullptr);
      EXPECT_NE(E.find("dur"), nullptr);
      EXPECT_NE(E.find("pid"), nullptr);
      EXPECT_NE(E.find("tid"), nullptr);
    } else {
      EXPECT_EQ(Ph->asString(), "M");
      ++Meta;
    }
  }
  EXPECT_EQ(Complete, 2u);
  EXPECT_GE(Meta, 1u); // process_name for the local lane
  const support::JsonValue *Unit = Doc.find("displayTimeUnit");
  ASSERT_NE(Unit, nullptr);
  EXPECT_EQ(Unit->asString(), "ms");
}

TEST(Trace, WireRoundTripPreservesEvents) {
  obs::Tracer T;
  {
    obs::TraceContext Ctx(&T);
    obs::Span S("server", "dispatch:check");
    S.args("{\"shard\": 1}");
  }
  std::vector<obs::TraceEvent> Parsed;
  ASSERT_TRUE(obs::Tracer::parseEvents(T.eventsJson(), Parsed));
  ASSERT_EQ(Parsed.size(), 1u);
  EXPECT_EQ(Parsed[0].Name, "dispatch:check");
  EXPECT_EQ(Parsed[0].Cat, "server");
  EXPECT_EQ(Parsed[0].Args, "{\"shard\": 1}");
}

TEST(Trace, ForeignEventsLandInTheirOwnLane) {
  obs::Tracer T;
  obs::TraceEvent Ev;
  Ev.Name = "remote-span";
  Ev.Cat = "server";
  Ev.StartNs = 1000;
  Ev.DurNs = 500;
  T.recordForeign(Ev, /*Pid=*/1, /*ShiftNs=*/2000);
  std::vector<obs::TraceEvent> Evs = T.events();
  ASSERT_EQ(Evs.size(), 1u);
  EXPECT_EQ(Evs[0].Pid, 1u);
  EXPECT_EQ(Evs[0].StartNs, 3000u);
  // Both lanes get a process_name metadata record once a foreign lane
  // exists.
  EXPECT_NE(T.json().find("checkfenced (remote)"), std::string::npos);
}

TEST(Trace, ThreadsShareOneTraceViaContextPropagation) {
  obs::Tracer T;
  obs::TraceContext Ctx(&T);
  obs::Tracer *Parent = obs::currentTracer();
  std::vector<std::thread> Workers;
  for (int I = 0; I < 4; ++I)
    Workers.emplace_back([Parent] {
      obs::TraceContext TC(Parent);
      obs::Span S("test", "worker-span");
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(T.eventCount(), 4u);
}

TEST(Trace, WriteFileProducesParseableJson) {
  std::string Path = "obs_trace_tmp.json";
  obs::Tracer T;
  {
    obs::TraceContext Ctx(&T);
    obs::Span S("test", "file-span");
  }
  ASSERT_TRUE(T.writeFile(Path));
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  support::JsonValue Doc;
  std::string Err;
  EXPECT_TRUE(support::parseJson(Buf.str(), Doc, Err)) << Err;
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Pipeline integration: deterministic names, byte-identical reports
//===----------------------------------------------------------------------===//

std::vector<std::string> tracedSpanNames(const Request &Req) {
  obs::Tracer T;
  obs::TraceContext Ctx(&T);
  Verifier V;
  Result R = V.check(Req);
  EXPECT_EQ(R.Verdict, Status::Pass);
  std::vector<std::string> Names;
  for (const obs::TraceEvent &Ev : T.events())
    Names.push_back(Ev.Cat + "/" + Ev.Name);
  std::sort(Names.begin(), Names.end());
  return Names;
}

TEST(TracePipeline, SpanNamesAreDeterministicAcrossRuns) {
  Request Req = Request::check("ms2", "T0").model("sc").noCache();
  std::vector<std::string> First = tracedSpanNames(Req);
  std::vector<std::string> Second = tracedSpanNames(Req);
  EXPECT_FALSE(First.empty());
  EXPECT_EQ(First, Second);
  // The phase spans the docs promise are present.
  auto Has = [&](const std::string &N) {
    return std::find(First.begin(), First.end(), N) != First.end();
  };
  EXPECT_TRUE(Has("request/request:check"));
  EXPECT_TRUE(Has("api/session_lease"));
  EXPECT_TRUE(Has("engine/encode"));
  EXPECT_TRUE(Has("engine/include"));
}

TEST(TracePipeline, TimingFreeReportIdenticalWithTracingOnOrOff) {
  Request Base = Request::matrix()
                     .impls({"ms2"})
                     .tests({"T0", "Tpc2"})
                     .models({"sc", "tso"})
                     .noCache();
  Verifier V;
  Report Off = V.matrix(Request(Base).jobs(2));
  std::string Path = "obs_matrix_trace_tmp.json";
  Report On = V.matrix(Request(Base).jobs(2).traceFile(Path));
  ASSERT_TRUE(Off.ok());
  ASSERT_TRUE(On.ok());
  EXPECT_EQ(Off.json(false), On.json(false));
  // The trace side effect happened and covered every cell.
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_NE(Buf.str().find("cell:ms2:T0:sc"), std::string::npos);
  EXPECT_NE(Buf.str().find("request:matrix"), std::string::npos);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(Metrics, CounterAndGaugeRender) {
  obs::MetricsRegistry Reg;
  obs::Counter &C = Reg.counter("test_total", "a test counter");
  obs::Gauge &G = Reg.gauge("test_depth", "a test gauge");
  C.add(3);
  G.set(-2);
  std::string Out = Reg.renderPrometheus();
  EXPECT_NE(Out.find("# HELP test_total a test counter\n"),
            std::string::npos);
  EXPECT_NE(Out.find("# TYPE test_total counter\n"), std::string::npos);
  EXPECT_NE(Out.find("test_total 3\n"), std::string::npos);
  EXPECT_NE(Out.find("# TYPE test_depth gauge\n"), std::string::npos);
  EXPECT_NE(Out.find("test_depth -2\n"), std::string::npos);
}

TEST(Metrics, RegistrationIsIdempotentByName) {
  obs::MetricsRegistry Reg;
  obs::Counter &A = Reg.counter("same_total", "help");
  obs::Counter &B = Reg.counter("same_total", "help");
  EXPECT_EQ(&A, &B);
  A.add(1);
  B.add(1);
  EXPECT_EQ(A.value(), 2u);
}

TEST(Metrics, HistogramPrometheusShape) {
  obs::MetricsRegistry Reg;
  obs::Histogram &H =
      Reg.histogram("lat_seconds", "latencies", {0.1, 1.0, 10.0});
  H.observe(0.05); // first bucket
  H.observe(0.5);  // second
  H.observe(100);  // +Inf overflow
  std::string Out = Reg.renderPrometheus();
  EXPECT_NE(Out.find("# TYPE lat_seconds histogram\n"), std::string::npos);
  // Cumulative buckets.
  EXPECT_NE(Out.find("lat_seconds_bucket{le=\"0.1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(Out.find("lat_seconds_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(Out.find("lat_seconds_bucket{le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_NE(Out.find("lat_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(Out.find("lat_seconds_count 3\n"), std::string::npos);
  EXPECT_EQ(H.count(), 3u);
  EXPECT_NEAR(H.sum(), 100.55, 1e-9);
}

TEST(Metrics, HistogramBoundaryValueIsInclusive) {
  obs::MetricsRegistry Reg;
  obs::Histogram &H = Reg.histogram("edge_seconds", "edges", {1.0, 2.0});
  H.observe(1.0); // le="1" is inclusive, Prometheus semantics
  std::string Out = Reg.renderPrometheus();
  EXPECT_NE(Out.find("edge_seconds_bucket{le=\"1\"} 1\n"),
            std::string::npos);
}

TEST(Metrics, HistogramQuantilesInterpolate) {
  obs::MetricsRegistry Reg;
  obs::Histogram &H =
      Reg.histogram("q_seconds", "quantiles", {1.0, 2.0, 4.0});
  for (int I = 0; I < 100; ++I)
    H.observe(1.5); // all in the (1, 2] bucket
  double P50 = H.quantile(0.5);
  EXPECT_GT(P50, 1.0);
  EXPECT_LE(P50, 2.0);
  obs::HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 100u);
  EXPECT_NEAR(S.Sum, 150.0, 1e-6);
  EXPECT_GT(S.P99, 1.0);
  EXPECT_LE(S.P99, 2.0);
}

TEST(Metrics, HistogramFamilyLabelsRenderPerSeries) {
  obs::MetricsRegistry Reg;
  obs::HistogramFamily &F = Reg.histogramFamily(
      "req_seconds", "request latency", "kind", {0.5, 5.0});
  F.withLabel("check").observe(0.1);
  F.withLabel("matrix").observe(1.0);
  std::string Out = Reg.renderPrometheus();
  EXPECT_NE(Out.find("req_seconds_bucket{kind=\"check\",le=\"0.5\"} 1\n"),
            std::string::npos);
  EXPECT_NE(Out.find("req_seconds_bucket{kind=\"matrix\",le=\"0.5\"} 0\n"),
            std::string::npos);
  EXPECT_NE(Out.find("req_seconds_count{kind=\"check\"} 1\n"),
            std::string::npos);
  // One shared header pair for the family, not one per label.
  size_t First = Out.find("# TYPE req_seconds histogram");
  ASSERT_NE(First, std::string::npos);
  EXPECT_EQ(Out.find("# TYPE req_seconds histogram", First + 1),
            std::string::npos);
  // withLabel returns a stable instrument.
  EXPECT_EQ(&F.withLabel("check"), &F.withLabel("check"));
}

TEST(Metrics, ConcurrentObservationIsRaceFreeAndLossless) {
  obs::MetricsRegistry Reg;
  obs::Counter &C = Reg.counter("hammer_total", "hammered");
  obs::HistogramFamily &F =
      Reg.histogramFamily("hammer_seconds", "hammered", "kind",
                          obs::latencyBuckets());
  constexpr int Threads = 8, PerThread = 5000;
  std::vector<std::thread> Workers;
  for (int W = 0; W < Threads; ++W)
    Workers.emplace_back([&, W] {
      obs::Histogram &H =
          F.withLabel(W % 2 ? "odd" : "even"); // racing creation
      for (int I = 0; I < PerThread; ++I) {
        C.add(1);
        H.observe(0.001 * (I % 50));
      }
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(C.value(), static_cast<uint64_t>(Threads * PerThread));
  uint64_t Total = 0;
  for (obs::Histogram *H : F.all())
    Total += H->count();
  EXPECT_EQ(Total, static_cast<uint64_t>(Threads * PerThread));
}

//===----------------------------------------------------------------------===//
// Logger
//===----------------------------------------------------------------------===//

class LogTest : public ::testing::Test {
protected:
  void SetUp() override { Saved = obs::logLevel(); }
  void TearDown() override {
    obs::setLogLevel(Saved);
    obs::setLogSink(nullptr);
  }
  obs::LogLevel Saved;
};

TEST_F(LogTest, LevelsFilter) {
  std::vector<std::string> Lines;
  obs::setLogSink([&](const std::string &L) { Lines.push_back(L); });
  obs::setLogLevel(obs::LogLevel::Warn);
  EXPECT_FALSE(obs::logEnabled(obs::LogLevel::Info));
  EXPECT_TRUE(obs::logEnabled(obs::LogLevel::Error));
  obs::log(obs::LogLevel::Info, "test", "dropped");
  obs::log(obs::LogLevel::Warn, "test", "kept");
  obs::logf(obs::LogLevel::Error, "test", "kept %d", 2);
  ASSERT_EQ(Lines.size(), 2u);
  EXPECT_NE(Lines[0].find("warn"), std::string::npos);
  EXPECT_NE(Lines[0].find("[test] kept"), std::string::npos);
  EXPECT_NE(Lines[1].find("kept 2"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  std::vector<std::string> Lines;
  obs::setLogSink([&](const std::string &L) { Lines.push_back(L); });
  obs::setLogLevel(obs::LogLevel::Off);
  obs::log(obs::LogLevel::Error, "test", "dropped");
  EXPECT_TRUE(Lines.empty());
}

TEST_F(LogTest, LineFormatHasTimestampLevelSubsystem) {
  std::string Line;
  obs::setLogSink([&](const std::string &L) { Line = L; });
  obs::setLogLevel(obs::LogLevel::Debug);
  obs::log(obs::LogLevel::Debug, "engine", "hello");
  // 2026-08-07T12:34:56.789Z debug [engine] hello\n
  ASSERT_GE(Line.size(), 25u);
  EXPECT_EQ(Line[4], '-');
  EXPECT_EQ(Line[10], 'T');
  EXPECT_EQ(Line[23], 'Z');
  EXPECT_NE(Line.find(" debug "), std::string::npos);
  EXPECT_NE(Line.find("[engine] hello"), std::string::npos);
  EXPECT_EQ(Line.back(), '\n');
}

TEST_F(LogTest, ParseLevelNames) {
  obs::LogLevel L = obs::LogLevel::Debug;
  EXPECT_TRUE(obs::parseLogLevel("warn", L));
  EXPECT_EQ(L, obs::LogLevel::Warn);
  EXPECT_TRUE(obs::parseLogLevel("off", L));
  EXPECT_EQ(L, obs::LogLevel::Off);
  EXPECT_FALSE(obs::parseLogLevel("verbose", L));
  EXPECT_EQ(L, obs::LogLevel::Off); // untouched on failure
  EXPECT_STREQ(obs::logLevelName(obs::LogLevel::Info), "info");
}

//===----------------------------------------------------------------------===//
// Server round-trip
//===----------------------------------------------------------------------===//

TEST(ObsServer, RemoteTraceRoundTripAndLatencyHistograms) {
  ServerConfig Cfg;
  Cfg.Port = 0;
  Cfg.LogLevel = "off";
  CheckServer Server(Cfg);
  std::string Error;
  ASSERT_TRUE(Server.start(Error)) << Error;
  std::string Url = "http://127.0.0.1:" + std::to_string(Server.port());

  std::string Path = "obs_remote_trace_tmp.json";
  RemoteVerifier RV(Url);
  Result R;
  RemoteStatus S =
      RV.check(Request::check("ms2", "T0").model("sc").traceFile(Path), R);
  ASSERT_TRUE(S.Ok) << S.Error;
  EXPECT_EQ(R.Verdict, Status::Pass);

  // The trace file holds both lanes: the client rpc span (pid 0) and
  // the server's queue/dispatch/pipeline spans (pid 1).
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Trace = Buf.str();
  EXPECT_NE(Trace.find("rpc:checkfence.check"), std::string::npos);
  EXPECT_NE(Trace.find("queue_wait"), std::string::npos);
  EXPECT_NE(Trace.find("dispatch:check"), std::string::npos);
  EXPECT_NE(Trace.find("request:check"), std::string::npos);
  EXPECT_NE(Trace.find("checkfenced (remote)"), std::string::npos);
  std::remove(Path.c_str());

  // /metrics exposes the per-kind latency and queue-wait histograms.
  server::HttpResult M = server::httpRequest(
      "127.0.0.1", Server.port(), "GET", "/metrics", "", {});
  ASSERT_TRUE(M.Ok) << M.Error;
  EXPECT_NE(M.Body.find("# TYPE checkfence_request_seconds histogram"),
            std::string::npos);
  EXPECT_NE(
      M.Body.find("checkfence_request_seconds_count{kind=\"check\"} 1"),
      std::string::npos);
  EXPECT_NE(M.Body.find(
                "checkfence_queue_wait_seconds_count{priority=\"normal\"} 1"),
            std::string::npos);
  EXPECT_NE(M.Body.find("checkfence_request_seconds_bucket{kind=\"check\","
                        "le=\"+Inf\"} 1"),
            std::string::npos);
  // Pre-registered series render as zeros before any request of that
  // kind arrives (no metric appears "from nowhere" mid-scrape).
  EXPECT_NE(M.Body.find("checkfence_request_seconds_count{kind=\"matrix\"} 0"),
            std::string::npos);

  // /status carries the quantile summaries for the served kind.
  server::HttpResult St = server::httpRequest(
      "127.0.0.1", Server.port(), "GET", "/status", "", {});
  ASSERT_TRUE(St.Ok) << St.Error;
  support::JsonValue Doc;
  std::string Err;
  ASSERT_TRUE(support::parseJson(St.Body, Doc, Err)) << Err;
  const support::JsonValue *RS = Doc.find("requestSeconds");
  ASSERT_NE(RS, nullptr);
  const support::JsonValue *Check = RS->find("check");
  ASSERT_NE(Check, nullptr);
  const support::JsonValue *Count = Check->find("count");
  ASSERT_NE(Count, nullptr);
  EXPECT_EQ(Count->asU64(), 1ull);
  EXPECT_NE(Check->find("p50"), nullptr);
  EXPECT_NE(Check->find("p99"), nullptr);

  Server.requestStop();
  Server.waitStopped();
}

} // namespace
