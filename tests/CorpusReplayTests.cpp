//===--- CorpusReplayTests.cpp - persisted repro regression corpus -----------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// Replays every committed repro fixture (tests/fixtures/repros/
// repro-*.txt, persisted in the explore corpus file format) through the
// DifferentialRunner twice - once with the reads-from fast oracle and
// once forced onto the brute-force enumerator - and requires both runs
// to come back divergence-free with identical outcomes. Any scenario
// that once tripped a checker bug stays in this corpus forever, and the
// corpus re-checks both oracle paths on every ctest run.
//
//===----------------------------------------------------------------------===//

#include "checkfence/checkfence.h"

#include "explore/Corpus.h"
#include "explore/Differential.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <filesystem>

using namespace checkfence;
using namespace checkfence::explore;

namespace {

std::string fixtureDir() {
  std::string Dir = __FILE__;
  return Dir.substr(0, Dir.find_last_of('/')) + "/fixtures/repros";
}

std::vector<std::string> reproFiles() {
  std::vector<std::string> Out;
  for (const auto &Entry :
       std::filesystem::directory_iterator(fixtureDir())) {
    std::string Name = Entry.path().filename().string();
    if (Name.rfind("repro-", 0) == 0 &&
        Name.size() > 4 && Name.substr(Name.size() - 4) == ".txt")
      Out.push_back(Entry.path().string());
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

TEST(CorpusReplay, FixturesExist) {
  EXPECT_GE(reproFiles().size(), 5u) << "fixture corpus went missing";
}

TEST(CorpusReplay, BothOraclesReplayEveryFixtureCleanly) {
  Verifier V;
  for (const std::string &Path : reproFiles()) {
    SCOPED_TRACE(Path);

    Repro R;
    std::string Error;
    ASSERT_TRUE(loadRepro(Path, R, Error)) << Error;
    ASSERT_FALSE(R.Models.empty());

    DiffOptions Fast;
    for (const std::string &Name : R.Models) {
      auto M = memmodel::modelFromName(Name);
      ASSERT_TRUE(M.has_value()) << Name;
      Fast.Models.push_back(*M);
    }
    // Sample every scenario so the fast path is additionally
    // enumerator-checked inline, on top of the A/B comparison below.
    Fast.UseFastOracle = true;
    Fast.EnumeratorSamplePeriod = 1;
    DiffOptions Slow = Fast;
    Slow.UseFastOracle = false;

    ScenarioOutcome A = DifferentialRunner(V, Fast).run(R.toScenario());
    ScenarioOutcome B = DifferentialRunner(V, Slow).run(R.toScenario());

    for (const Divergence &D : A.Divergences)
      ADD_FAILURE() << "fast oracle: " << D.Kind << " on " << D.Model
                    << ": " << D.Detail;
    for (const Divergence &D : B.Divergences)
      ADD_FAILURE() << "enumerator: " << D.Kind << " on " << D.Model
                    << ": " << D.Detail;
    EXPECT_EQ(A.Ran, B.Ran);
    EXPECT_EQ(A.Skips, B.Skips);
    EXPECT_EQ(A.Summary, B.Summary);
  }
}

TEST(CorpusReplay, FixturesRoundTripThroughTheParser) {
  for (const std::string &Path : reproFiles()) {
    SCOPED_TRACE(Path);
    Repro R;
    std::string Error;
    ASSERT_TRUE(loadRepro(Path, R, Error)) << Error;
    Repro Again;
    ASSERT_TRUE(parseRepro(renderRepro(R), Again, Error)) << Error;
    EXPECT_EQ(renderRepro(Again), renderRepro(R));
  }
}

} // namespace
