//===--- BaselineTests.cpp - commit-point method tests ----------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "baseline/CommitPointChecker.h"
#include "harness/Catalog.h"
#include "impls/Impls.h"

#include "gtest/gtest.h"

using namespace checkfence;
using namespace checkfence::baseline;
using namespace checkfence::harness;

namespace {

CommitPointOptions scOpts() {
  CommitPointOptions O;
  O.Model = memmodel::ModelParams::sc();
  return O;
}

TEST(CommitPoint, MsnPassesT0) {
  CommitPointResult R =
      runCommitPointTest(impls::sourceFor("msn"), impls::referenceFor("queue"),
                         testByName("T0"), scOpts());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.Pass);
}

TEST(CommitPoint, Ms2PassesT1) {
  CommitPointResult R =
      runCommitPointTest(impls::sourceFor("ms2"), impls::referenceFor("queue"),
                         testByName("T1"), scOpts());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.Pass);
}

TEST(CommitPoint, MissingAnnotationsReported) {
  // snark carries no commit() markers.
  CommitPointResult R = runCommitPointTest(impls::sourceFor("snark"),
                                           impls::referenceFor("deque"),
                                           testByName("D0"), scOpts());
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("commit"), std::string::npos);
}

TEST(CommitPoint, BrokenQueueFails) {
  // A deliberately broken queue: dequeue forgets to advance the head, so
  // two dequeues return the same element - not serializable.
  const char *Broken = R"(
extern void commit();
typedef int value_t;
value_t buf[8];
int qhead;
int qtail;
void init_op(void) { qhead = 0; qtail = 0; }
void enqueue_op(value_t v) {
  atomic {
    buf[qtail] = v;
    commit();
    qtail = qtail + 1;
  }
}
value_t dequeue_op(void) {
  value_t r;
  atomic {
    if (qhead == qtail) {
      r = 2;
      commit(0);
    } else {
      r = buf[qhead];
      commit(0);
      /* bug: qhead is not advanced */
    }
  }
  return r;
}
)";
  CommitPointOptions O = scOpts();
  CommitPointResult R = runCommitPointTest(
      impls::preludeSource() + Broken, impls::referenceFor("queue"),
      testByName("Tpc2"), O);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(R.Pass);
  ASSERT_TRUE(R.CexObservation.has_value());
}

TEST(CommitPoint, AgreesWithObservationSetMethod) {
  // Both methods must agree on PASS across queue tests under SC.
  for (const char *Test : {"T0", "Tpc2", "Ti2"}) {
    RunOptions RO;
    RO.Check.Model = memmodel::ModelParams::sc();
    checker::CheckResult R1 =
        runTest(impls::sourceFor("msn"), testByName(Test), RO);
    ASSERT_EQ(R1.Status, checker::CheckStatus::Pass) << Test;

    CommitPointOptions CO = scOpts();
    CO.Bounds = R1.FinalBounds;
    CommitPointResult R2 = runCommitPointTest(impls::sourceFor("msn"),
                                              impls::referenceFor("queue"),
                                              testByName(Test), CO);
    ASSERT_TRUE(R2.Ok) << Test << ": " << R2.Error;
    EXPECT_TRUE(R2.Pass) << Test;
  }
}

} // namespace
