//===--- AxiomaticOracleTests.cpp - encoder vs. brute-force axioms ----------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// Differential testing of the SAT encoding: for litmus-sized programs, the
// observation set mined from the propositional encoding (Sec. 3.2.1) must
// equal the set produced by AxiomaticEnumerator, which implements the same
// Sec. 2.3.2 axioms by literally enumerating total orders. The two
// implementations share no code beyond the FlatProgram representation and
// the model trait table, so agreement across hand-written litmus shapes
// and randomly generated programs exercises the order encoding, the
// visibility/maximality clauses, fences, atomic exclusivity, store
// forwarding, and seriality on all five models.
//
//===----------------------------------------------------------------------===//

#include "checker/Encoder.h"
#include "checker/SpecMiner.h"
#include "frontend/Lowering.h"
#include "harness/TestSpec.h"
#include "memmodel/AxiomaticEnumerator.h"
#include "memmodel/StoreBufferExecutor.h"

#include "gtest/gtest.h"

#include <random>
#include <sstream>

using namespace checkfence;
using namespace checkfence::checker;
using namespace checkfence::harness;
using lsl::Value;

namespace {

constexpr auto SER = memmodel::ModelParams::serial();
constexpr auto SC = memmodel::ModelParams::sc();
constexpr auto TSO = memmodel::ModelParams::tso();
constexpr auto PSO = memmodel::ModelParams::pso();
constexpr auto RLX = memmodel::ModelParams::relaxed();

const std::vector<memmodel::ModelParams> &allFive() {
  static const std::vector<memmodel::ModelParams> Models = {SER, SC, TSO, PSO,
                                                          RLX};
  return Models;
}

std::set<memmodel::RefObservation> toRef(const ObservationSet &S) {
  std::set<memmodel::RefObservation> Out;
  for (const Observation &O : S) {
    memmodel::RefObservation R;
    R.Error = O.Error;
    R.Values = O.Values;
    Out.insert(std::move(R));
  }
  return Out;
}

std::string show(const std::set<memmodel::RefObservation> &S) {
  std::ostringstream SS;
  for (const memmodel::RefObservation &O : S) {
    SS << (O.Error ? "E(" : " (");
    for (size_t I = 0; I < O.Values.size(); ++I)
      SS << (I ? "," : "") << O.Values[I].str();
    SS << ") ";
  }
  return SS.str();
}

struct ThreadOps {
  std::string Proc;
  int NumArgs = 0;
};

/// Compiles \p Source, builds one thread per \p Ops entry, and checks that
/// the mined and the enumerated observation sets agree on every model.
/// Returns the number of models actually compared (cyclic-dependency
/// programs are skipped on the models where they arise).
int compareAllModels(const std::string &Source,
                     const std::vector<ThreadOps> &Ops,
                     const std::string &Label) {
  frontend::DiagEngine Diags;
  lsl::Program Prog;
  EXPECT_TRUE(frontend::compileC(Source, {}, Prog, Diags))
      << Label << ":\n" << Source << "\n" << Diags.str();

  TestSpec Spec;
  Spec.Name = "oracle";
  for (const ThreadOps &Op : Ops)
    Spec.Threads.push_back({OpSpec{Op.Proc, Op.NumArgs, false, false}});
  std::vector<std::string> Threads = buildTestThreads(Prog, Spec);

  int Compared = 0;
  for (memmodel::ModelParams Model : allFive()) {
    ProblemConfig Cfg;
    Cfg.Model = Model;
    EncodedProblem Prob(Prog, Threads, {}, Cfg);
    if (!Prob.ok()) {
      ADD_FAILURE() << Label << ": " << Prob.error();
      return Compared;
    }

    memmodel::AxiomaticOptions AO;
    AO.Model = Model;
    memmodel::AxiomaticResult Oracle =
        memmodel::enumerateAxiomatic(Prob.flat(), AO);
    if (!Oracle.Ok && Oracle.Error == "cyclic value dependency")
      continue; // thin-air shape: the enumerator cannot decide it
    if (!Oracle.Ok) {
      ADD_FAILURE() << Label << ": oracle: " << Oracle.Error;
      return Compared;
    }

    MiningOutcome Mined = mineSpecification(Prob);
    if (!Mined.Ok && !Mined.SequentialBug) {
      ADD_FAILURE() << Label << ": miner: " << Mined.Error;
      return Compared;
    }

    std::set<memmodel::RefObservation> FromSat = toRef(Mined.Spec);
    EXPECT_EQ(FromSat, Oracle.Observations)
        << Label << " disagrees on " << memmodel::modelName(Model)
        << "\n  sat:    " << show(FromSat)
        << "\n  oracle: " << show(Oracle.Observations) << "\n"
        << Source;
    ++Compared;
  }
  return Compared;
}

#define LITMUS_HEADER                                                        \
  "extern void observe(int v);\n"                                           \
  "extern void fence(char *type);\n"

//===----------------------------------------------------------------------===//
// Hand-written litmus shapes.
//===----------------------------------------------------------------------===//

TEST(AxiomaticOracle, StoreBuffering) {
  compareAllModels(LITMUS_HEADER R"(
int x; int y;
void init_op(void) { x = 0; y = 0; }
void t1_op(void) { x = 1; observe(y); }
void t2_op(void) { y = 1; observe(x); }
)",
                   {{"t1_op"}, {"t2_op"}}, "sb");
}

TEST(AxiomaticOracle, StoreBufferingFenced) {
  compareAllModels(LITMUS_HEADER R"(
int x; int y;
void init_op(void) { x = 0; y = 0; }
void t1_op(void) { x = 1; fence("store-load"); observe(y); }
void t2_op(void) { y = 1; fence("store-load"); observe(x); }
)",
                   {{"t1_op"}, {"t2_op"}}, "sb+fence");
}

TEST(AxiomaticOracle, MessagePassing) {
  compareAllModels(LITMUS_HEADER R"(
int data; int flag;
void init_op(void) { data = 0; flag = 0; }
void producer_op(void) { data = 1; flag = 1; }
void consumer_op(void) { int f = flag; int d = data;
                         observe(f); observe(d); }
)",
                   {{"producer_op"}, {"consumer_op"}}, "mp");
}

TEST(AxiomaticOracle, MessagePassingFenced) {
  compareAllModels(LITMUS_HEADER R"(
int data; int flag;
void init_op(void) { data = 0; flag = 0; }
void producer_op(void) { data = 1; fence("store-store"); flag = 1; }
void consumer_op(void) { int f = flag; fence("load-load"); int d = data;
                         observe(f); observe(d); }
)",
                   {{"producer_op"}, {"consumer_op"}}, "mp+fences");
}

TEST(AxiomaticOracle, LoadBuffering) {
  compareAllModels(LITMUS_HEADER R"(
int x; int y;
void init_op(void) { x = 0; y = 0; }
void t1_op(void) { int r = x; y = 1; observe(r); }
void t2_op(void) { int r = y; x = 1; observe(r); }
)",
                   {{"t1_op"}, {"t2_op"}}, "lb");
}

TEST(AxiomaticOracle, Iriw) {
  compareAllModels(LITMUS_HEADER R"(
int x; int y;
void init_op(void) { x = 0; y = 0; }
void w1_op(void) { x = 1; }
void w2_op(void) { y = 1; }
void r1_op(void) { int a = x; fence("load-load"); int b = y;
                   observe(a); observe(b); }
void r2_op(void) { int c = y; fence("load-load"); int d = x;
                   observe(c); observe(d); }
)",
                   {{"w1_op"}, {"w2_op"}, {"r1_op"}, {"r2_op"}}, "iriw");
}

TEST(AxiomaticOracle, CoherenceAndForwarding) {
  compareAllModels(LITMUS_HEADER R"(
int x;
void init_op(void) { x = 0; }
void writer_op(void) { x = 1; x = 2; observe(x); }
void reader_op(void) { int a = x; int b = x; observe(a); observe(b); }
)",
                   {{"writer_op"}, {"reader_op"}}, "coherence+fwd");
}

TEST(AxiomaticOracle, AtomicIncrements) {
  compareAllModels(LITMUS_HEADER R"(
int x;
void init_op(void) { x = 0; }
void incr_op(void) {
  int t;
  atomic { t = x; x = t + 1; }
  observe(t);
}
)",
                   {{"incr_op"}, {"incr_op"}}, "atomic-incr");
}

TEST(AxiomaticOracle, SymbolicArguments) {
  // Choice values (the {0,1} operation arguments) are enumerated by both
  // sides; the argument value is part of the observation vector.
  compareAllModels(LITMUS_HEADER R"(
int x; int y;
void init_op(void) { x = 0; y = 0; }
void w_op(int v) { x = v; y = v + 1; }
void r_op(void) { int a = y; int b = x; observe(a); observe(b); }
)",
                   {{"w_op", 1}, {"r_op"}}, "choice-args");
}

TEST(AxiomaticOracle, DependentData) {
  // The consumer republishes what it read: store data is load-dependent
  // (supported by the oracle as long as no cyclic dependency arises).
  compareAllModels(LITMUS_HEADER R"(
int x; int y;
void init_op(void) { x = 0; y = 0; }
void t1_op(void) { x = 1; }
void t2_op(void) { int r = x; y = r; }
void t3_op(void) { int s = y; observe(s); }
)",
                   {{"t1_op"}, {"t2_op"}, {"t3_op"}}, "dep-data");
}

TEST(AxiomaticOracle, ThreeThreadsMixed) {
  compareAllModels(LITMUS_HEADER R"(
int x; int y; int z;
void init_op(void) { x = 0; y = 0; z = 0; }
void t1_op(void) { x = 1; fence("store-store"); y = 1; }
void t2_op(void) { int a = y; z = 2; observe(a); }
void t3_op(void) { int b = z; int c = x; observe(b); observe(c); }
)",
                   {{"t1_op"}, {"t2_op"}, {"t3_op"}}, "3t-mixed");
}

//===----------------------------------------------------------------------===//
// The operational store-buffer machine (x86-TSO style) agrees with the
// axiomatic TSO/PSO encodings: a third, machine-flavored semantics with
// FIFO / per-address buffers, forwarding, barrier tokens and load
// stalling. Atomic blocks are outside its fragment.
//===----------------------------------------------------------------------===//

int compareBufferMachine(const std::string &Source,
                         const std::vector<ThreadOps> &Ops,
                         const std::string &Label) {
  frontend::DiagEngine Diags;
  lsl::Program Prog;
  EXPECT_TRUE(frontend::compileC(Source, {}, Prog, Diags))
      << Label << ":\n" << Source << "\n" << Diags.str();

  TestSpec Spec;
  Spec.Name = "buffer";
  for (const ThreadOps &Op : Ops)
    Spec.Threads.push_back({OpSpec{Op.Proc, Op.NumArgs, false, false}});
  std::vector<std::string> Threads = buildTestThreads(Prog, Spec);

  int Compared = 0;
  for (memmodel::ModelParams Model : {TSO, PSO}) {
    ProblemConfig Cfg;
    Cfg.Model = Model;
    EncodedProblem Prob(Prog, Threads, {}, Cfg);
    if (!Prob.ok()) {
      ADD_FAILURE() << Label << ": " << Prob.error();
      return Compared;
    }

    memmodel::StoreBufferOptions BO;
    BO.Model = Model;
    memmodel::StoreBufferResult Machine =
        memmodel::enumerateStoreBuffer(Prob.flat(), BO);
    if (!Machine.Ok) {
      ADD_FAILURE() << Label << ": machine: " << Machine.Error;
      return Compared;
    }

    MiningOutcome Mined = mineSpecification(Prob);
    if (!Mined.Ok && !Mined.SequentialBug) {
      ADD_FAILURE() << Label << ": miner: " << Mined.Error;
      return Compared;
    }

    std::set<memmodel::RefObservation> FromSat = toRef(Mined.Spec);
    EXPECT_EQ(FromSat, Machine.Observations)
        << Label << " disagrees on " << memmodel::modelName(Model)
        << "\n  axiomatic: " << show(FromSat)
        << "\n  machine:   " << show(Machine.Observations) << "\n"
        << Source;
    ++Compared;
  }
  return Compared;
}

TEST(BufferMachine, ClassicLitmusShapes) {
  compareBufferMachine(LITMUS_HEADER R"(
int x; int y;
void init_op(void) { x = 0; y = 0; }
void t1_op(void) { x = 1; observe(y); }
void t2_op(void) { y = 1; observe(x); }
)",
                       {{"t1_op"}, {"t2_op"}}, "sb");
  compareBufferMachine(LITMUS_HEADER R"(
int data; int flag;
void init_op(void) { data = 0; flag = 0; }
void producer_op(void) { data = 1; flag = 1; }
void consumer_op(void) { int f = flag; int d = data;
                         observe(f); observe(d); }
)",
                       {{"producer_op"}, {"consumer_op"}}, "mp");
  compareBufferMachine(LITMUS_HEADER R"(
int data; int flag;
void init_op(void) { data = 0; flag = 0; }
void producer_op(void) { data = 1; fence("store-store"); flag = 1; }
void consumer_op(void) { int f = flag; int d = data;
                         observe(f); observe(d); }
)",
                       {{"producer_op"}, {"consumer_op"}}, "mp+ss");
  compareBufferMachine(LITMUS_HEADER R"(
int x; int y;
void init_op(void) { x = 0; y = 0; }
void t1_op(void) { x = 1; fence("store-load"); observe(y); }
void t2_op(void) { y = 1; fence("store-load"); observe(x); }
)",
                       {{"t1_op"}, {"t2_op"}}, "sb+sl");
  compareBufferMachine(LITMUS_HEADER R"(
int x;
void init_op(void) { x = 0; }
void writer_op(void) { x = 1; x = 2; observe(x); }
void reader_op(void) { int a = x; int b = x; observe(a); observe(b); }
)",
                       {{"writer_op"}, {"reader_op"}}, "coherence+fwd");
  compareBufferMachine(LITMUS_HEADER R"(
int x; int y;
void init_op(void) { x = 0; y = 0; }
void w1_op(void) { x = 1; }
void w2_op(void) { y = 1; }
void r1_op(void) { int a = x; int b = y; observe(a); observe(b); }
void r2_op(void) { int c = y; int d = x; observe(c); observe(d); }
)",
                       {{"w1_op"}, {"w2_op"}, {"r1_op"}, {"r2_op"}},
                       "iriw");
}

TEST(BufferMachine, StoreLoadFenceDoesNotOrderStores) {
  // The subtle case that distinguishes a faithful store-load fence from a
  // full drain on PSO: two stores around a store-load fence stay mutually
  // unordered (the fence only adds store-to-load edges).
  compareBufferMachine(LITMUS_HEADER R"(
int x; int y;
void init_op(void) { x = 0; y = 0; }
void w_op(void) { x = 1; fence("store-load"); y = 1; }
void r_op(void) { int a = y; int b = x; observe(a); observe(b); }
)",
                       {{"w_op"}, {"r_op"}}, "sl-between-stores");
}

TEST(BufferMachine, ArgumentsAndDependentData) {
  compareBufferMachine(LITMUS_HEADER R"(
int x; int y; int z;
void init_op(void) { x = 0; y = 0; z = 0; }
void w_op(int v) { x = v; y = v + 1; }
void relay_op(void) { int r = y; z = r; }
void r_op(void) { int s = z; int t = x; observe(s); observe(t); }
)",
                       {{"w_op", 1}, {"relay_op"}, {"r_op"}}, "relay");
}

//===----------------------------------------------------------------------===//
// Randomly generated programs (property sweep). The generator emits
// branch-free threads over three shared variables with stores of
// constants/arguments/loaded values, fences of random kinds, atomic
// read-modify-write blocks, and observations.
//===----------------------------------------------------------------------===//

struct GenProgram {
  std::string Source;
  std::vector<ThreadOps> Ops;
};

GenProgram generate(unsigned Seed, bool AllowAtomic = true) {
  std::mt19937 Rng(Seed);
  auto Pick = [&](int N) { return static_cast<int>(Rng() % N); };
  const char *Vars[] = {"x", "y", "z"};
  const char *Fences[] = {"load-load", "load-store", "store-load",
                          "store-store"};

  int NumVars = 2 + Pick(2);
  int NumThreads = 2 + Pick(2);
  // Access budget keeps the permutation search cheap: the init stores are
  // sequenced, so the search space is the interleavings of the bodies.
  int Budget = 7;

  std::ostringstream Src;
  Src << LITMUS_HEADER;
  for (int V = 0; V < NumVars; ++V)
    Src << "int " << Vars[V] << ";\n";
  Src << "void init_op(void) {";
  for (int V = 0; V < NumVars; ++V)
    Src << " " << Vars[V] << " = 0;";
  Src << " }\n";

  GenProgram Out;
  int RegNum = 0;
  for (int T = 0; T < NumThreads; ++T) {
    int Len = 1 + Pick(3);
    bool UsesArg = false;
    std::ostringstream Body;
    for (int S = 0; S < Len && Budget > 0; ++S) {
      switch (Pick(AllowAtomic ? 6 : 5)) {
      case 0: // store constant
        Body << "  " << Vars[Pick(NumVars)] << " = " << 1 + Pick(2)
             << ";\n";
        Budget -= 1;
        break;
      case 1: // store the symbolic argument
        Body << "  " << Vars[Pick(NumVars)] << " = v;\n";
        UsesArg = true;
        Budget -= 1;
        break;
      case 2: { // load and observe
        int R = RegNum++;
        Body << "  int r" << R << " = " << Vars[Pick(NumVars)]
             << "; observe(r" << R << ");\n";
        Budget -= 1;
        break;
      }
      case 3: { // load and republish (dependent store data)
        int R = RegNum++;
        Body << "  int r" << R << " = " << Vars[Pick(NumVars)] << "; "
             << Vars[Pick(NumVars)] << " = r" << R << ";\n";
        Budget -= 2;
        break;
      }
      case 4: // fence
        Body << "  fence(\"" << Fences[Pick(4)] << "\");\n";
        break;
      case 5: { // atomic read-modify-write
        int R = RegNum++;
        const char *V = Vars[Pick(NumVars)];
        Body << "  int r" << R << ";\n  atomic { r" << R << " = " << V
             << "; " << V << " = r" << R << " + 1; }\n  observe(r" << R
             << ");\n";
        Budget -= 2;
        break;
      }
      }
    }
    std::string Proc = "t" + std::to_string(T) + "_op";
    Src << "void " << Proc << "(" << (UsesArg ? "int v" : "void")
        << ") {\n"
        << Body.str() << "}\n";
    Out.Ops.push_back({Proc, UsesArg ? 1 : 0});
  }
  Out.Source = Src.str();
  return Out;
}

class RandomLitmus : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomLitmus, EncoderMatchesOracle) {
  GenProgram G = generate(GetParam());
  int Compared = compareAllModels(
      G.Source, G.Ops, "seed " + std::to_string(GetParam()));
  // At the very least the strong models must have been comparable (no
  // cyclic dependencies arise under Serial/SC where <M embeds <p).
  EXPECT_GE(Compared, 2) << G.Source;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomLitmus,
                         ::testing::Range(0u, 64u));

class RandomBufferMachine : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomBufferMachine, AxiomaticMatchesOperational) {
  GenProgram G = generate(GetParam(), /*AllowAtomic=*/false);
  int Compared = compareBufferMachine(
      G.Source, G.Ops, "buffer seed " + std::to_string(GetParam()));
  EXPECT_EQ(Compared, 2) << G.Source;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomBufferMachine,
                         ::testing::Range(100u, 148u));

} // namespace
