//===--- TestSpecTests.cpp - test-notation grammar properties ----------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// The Fig. 8 notation grammar is the explore generator's output language:
// every randomly generated spec is rendered to notation, persisted, and
// parsed back. These tests pin the round-trip property parse(render(S))
// == S over a generated sweep of specs for every alphabet, the exact
// catalog notations, and the parser's rejection of malformed input.
//
//===----------------------------------------------------------------------===//

#include "harness/Catalog.h"
#include "harness/TestSpec.h"

#include "gtest/gtest.h"

using namespace checkfence;
using namespace checkfence::harness;

namespace {

/// Deterministic 64-bit mixer (SplitMix64) - keeps the sweep independent
/// of library RNG implementations.
struct Mix {
  uint64_t State;
  explicit Mix(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }
  int below(int N) { return static_cast<int>(next() % N); }
};

TestSpec generateSpec(Mix &Rng, const OpAlphabet &Alphabet) {
  auto RandomOp = [&] {
    const OpBinding &B = Alphabet[Rng.below(static_cast<int>(
        Alphabet.size()))];
    OpSpec Op;
    Op.Proc = B.Proc;
    Op.NumArgs = B.NumArgs;
    Op.HasRet = B.HasRet;
    Op.Primed = Rng.below(2) == 0;
    return Op;
  };
  TestSpec Spec;
  int InitOps = Rng.below(3);
  for (int I = 0; I < InitOps; ++I)
    Spec.Init.push_back(RandomOp());
  int Threads = 1 + Rng.below(4);
  for (int T = 0; T < Threads; ++T) {
    std::vector<OpSpec> Ops;
    // Empty threads are legal notation ("( e | )"), keep them in the
    // sweep.
    int Len = Rng.below(4);
    for (int I = 0; I < Len; ++I)
      Ops.push_back(RandomOp());
    Spec.Threads.push_back(std::move(Ops));
  }
  return Spec;
}

const std::vector<OpAlphabet> &allAlphabets() {
  static const std::vector<OpAlphabet> Alphabets = {
      queueAlphabet(), setAlphabet(), dequeAlphabet(), stackAlphabet()};
  return Alphabets;
}

//===----------------------------------------------------------------------===//
// Round-trip property: parse(render(S)) == S.
//===----------------------------------------------------------------------===//

TEST(TestSpecGrammar, RenderParseRoundTripSweep) {
  Mix Rng(20260729);
  int Checked = 0;
  for (const OpAlphabet &Alphabet : allAlphabets()) {
    for (int I = 0; I < 50; ++I) {
      TestSpec Spec = generateSpec(Rng, Alphabet);
      std::string Text = renderTestNotation(Spec, Alphabet);
      TestSpec Back;
      std::string Err;
      ASSERT_TRUE(parseTestNotation(Text, Alphabet, Back, Err))
          << Text << ": " << Err;
      EXPECT_EQ(Back, Spec) << Text;
      ++Checked;
    }
  }
  EXPECT_EQ(Checked, 200);
}

TEST(TestSpecGrammar, CatalogNotationsRoundTrip) {
  for (const std::vector<CatalogEntry> *List :
       {&paperTests(), &extensionTests()}) {
    for (const CatalogEntry &E : *List) {
      OpAlphabet Alphabet = alphabetFor(E.Kind);
      TestSpec Spec;
      std::string Err;
      ASSERT_TRUE(parseTestNotation(E.Notation, Alphabet, Spec, Err))
          << E.Name << ": " << Err;
      // render is not expected to reproduce the catalog's exact spacing,
      // only an equivalent spec.
      TestSpec Back;
      ASSERT_TRUE(parseTestNotation(renderTestNotation(Spec, Alphabet),
                                    Alphabet, Back, Err))
          << E.Name << ": " << Err;
      EXPECT_EQ(Back, Spec) << E.Name;
    }
  }
}

TEST(TestSpecGrammar, MidTokenPrimesParse) {
  // The paper typesets primes both mid-token (a'l) and trailing (al');
  // both must parse to the same primed op.
  OpAlphabet Alphabet = dequeAlphabet();
  TestSpec Trailing, Mid;
  std::string Err;
  ASSERT_TRUE(parseTestNotation("( al' rr )", Alphabet, Trailing, Err))
      << Err;
  ASSERT_TRUE(parseTestNotation("( a'l rr )", Alphabet, Mid, Err)) << Err;
  EXPECT_EQ(Trailing, Mid);
  ASSERT_EQ(Trailing.Threads.size(), 1u);
  ASSERT_EQ(Trailing.Threads[0].size(), 2u);
  EXPECT_TRUE(Trailing.Threads[0][0].Primed);
  EXPECT_FALSE(Trailing.Threads[0][1].Primed);
}

//===----------------------------------------------------------------------===//
// Malformed input is rejected with a diagnostic, never misparsed.
//===----------------------------------------------------------------------===//

TEST(TestSpecGrammar, MalformedInputsRejected) {
  struct Case {
    const char *Text;
    const char *Why;
  };
  const Case Cases[] = {
      {"", "no threads at all"},
      {"e d", "init ops but no thread section"},
      {"( e | d", "missing closing paren"},
      {"e | d )", "pipe outside threads"},
      {") e (", "unmatched close"},
      {"( e ( d ) )", "nested parens"},
      {"( e x d )", "unknown token"},
      {"( q )", "token from another alphabet"},
      {"'( e )", "leading prime binds to nothing"},
  };
  OpAlphabet Alphabet = queueAlphabet();
  for (const Case &C : Cases) {
    TestSpec Spec;
    std::string Err;
    EXPECT_FALSE(parseTestNotation(C.Text, Alphabet, Spec, Err))
        << C.Why << ": '" << C.Text << "' parsed unexpectedly";
    EXPECT_FALSE(Err.empty()) << C.Why;
  }
}

TEST(TestSpecGrammar, EmptyThreadsAreLegal) {
  OpAlphabet Alphabet = queueAlphabet();
  TestSpec Spec;
  std::string Err;
  ASSERT_TRUE(parseTestNotation("( e | )", Alphabet, Spec, Err)) << Err;
  ASSERT_EQ(Spec.Threads.size(), 2u);
  EXPECT_EQ(Spec.Threads[0].size(), 1u);
  EXPECT_TRUE(Spec.Threads[1].empty());
}

} // namespace
