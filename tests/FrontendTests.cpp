//===--- FrontendTests.cpp - lexer / parser / lowering tests ---------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"
#include "frontend/Lowering.h"
#include "frontend/Parser.h"
#include "frontend/Preprocessor.h"
#include "lsl/Printer.h"

#include "gtest/gtest.h"

using namespace checkfence;
using namespace checkfence::frontend;

namespace {

//===----------------------------------------------------------------------===//
// Preprocessor
//===----------------------------------------------------------------------===//

TEST(Preprocessor, IfdefSelectsBranch) {
  DiagEngine D;
  std::string Out = preprocess("#ifdef FOO\nint a;\n#else\nint b;\n#endif\n",
                               {"FOO"}, D);
  EXPECT_FALSE(D.hasErrors());
  EXPECT_NE(Out.find("int a;"), std::string::npos);
  EXPECT_EQ(Out.find("int b;"), std::string::npos);
}

TEST(Preprocessor, IfndefAndDefine) {
  DiagEngine D;
  std::string Out =
      preprocess("#define X\n#ifndef X\nint a;\n#endif\nint c;\n", {}, D);
  EXPECT_FALSE(D.hasErrors());
  EXPECT_EQ(Out.find("int a;"), std::string::npos);
  EXPECT_NE(Out.find("int c;"), std::string::npos);
}

TEST(Preprocessor, NestedConditionals) {
  DiagEngine D;
  std::string Src = "#ifdef A\n#ifdef B\nint ab;\n#endif\nint a;\n#endif\n";
  std::string Out = preprocess(Src, {"A"}, D);
  EXPECT_EQ(Out.find("int ab;"), std::string::npos);
  EXPECT_NE(Out.find("int a;"), std::string::npos);
  Out = preprocess(Src, {"A", "B"}, D);
  EXPECT_NE(Out.find("int ab;"), std::string::npos);
}

TEST(Preprocessor, PreservesLineNumbers) {
  DiagEngine D;
  std::string Out = preprocess("#ifdef X\nhidden\n#endif\nvisible\n", {}, D);
  // 'visible' must still be on line 4.
  int Line = 1;
  size_t Pos = Out.find("visible");
  ASSERT_NE(Pos, std::string::npos);
  for (size_t I = 0; I < Pos; ++I)
    if (Out[I] == '\n')
      ++Line;
  EXPECT_EQ(Line, 4);
}

TEST(Preprocessor, UnterminatedIfdefIsError) {
  DiagEngine D;
  preprocess("#ifdef A\nint x;\n", {}, D);
  EXPECT_TRUE(D.hasErrors());
}

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(Lexer, BasicTokens) {
  DiagEngine D;
  auto Toks = lex("while (x->next != 0) { x = x->next; }", D);
  EXPECT_FALSE(D.hasErrors());
  ASSERT_GE(Toks.size(), 5u);
  EXPECT_EQ(Toks[0].K, TokKind::KwWhile);
  EXPECT_EQ(Toks[1].K, TokKind::LParen);
  EXPECT_EQ(Toks[2].K, TokKind::Identifier);
  EXPECT_EQ(Toks[2].Text, "x");
  EXPECT_EQ(Toks[3].K, TokKind::Arrow);
}

TEST(Lexer, NumbersAndSuffixes) {
  DiagEngine D;
  auto Toks = lex("42 0x1F 7u 3L", D);
  EXPECT_EQ(Toks[0].IntVal, 42);
  EXPECT_EQ(Toks[1].IntVal, 31);
  EXPECT_EQ(Toks[2].IntVal, 7);
  EXPECT_EQ(Toks[3].IntVal, 3);
}

TEST(Lexer, CommentsSkipped) {
  DiagEngine D;
  auto Toks = lex("a // line comment\n/* block\ncomment */ b", D);
  ASSERT_EQ(Toks.size(), 3u); // a, b, eof
  EXPECT_EQ(Toks[0].Text, "a");
  EXPECT_EQ(Toks[1].Text, "b");
}

TEST(Lexer, StringLiteral) {
  DiagEngine D;
  auto Toks = lex("fence(\"store-store\");", D);
  ASSERT_GE(Toks.size(), 3u);
  EXPECT_EQ(Toks[2].K, TokKind::String);
  EXPECT_EQ(Toks[2].Text, "store-store");
}

TEST(Lexer, LineNumbersTracked) {
  DiagEngine D;
  auto Toks = lex("a\nb\n  c", D);
  EXPECT_EQ(Toks[0].Loc.Line, 1);
  EXPECT_EQ(Toks[1].Loc.Line, 2);
  EXPECT_EQ(Toks[2].Loc.Line, 3);
  EXPECT_EQ(Toks[2].Loc.Col, 3);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(Parser, StructAndTypedef) {
  DiagEngine D;
  TranslationUnit TU;
  bool Ok = parseTranslationUnit("typedef struct node { struct node *next; "
                                 "int value; } node_t; node_t *head;",
                                 TU, D);
  ASSERT_TRUE(Ok) << D.str();
  ASSERT_TRUE(TU.Typedefs.count("node_t"));
  const Type *T = TU.Typedefs["node_t"];
  ASSERT_TRUE(T->isStruct());
  EXPECT_EQ(T->Struct->Fields.size(), 2u);
  EXPECT_EQ(T->Struct->Fields[1].Name, "value");
  EXPECT_EQ(T->Struct->Fields[1].Index, 1);
  ASSERT_EQ(TU.Globals.size(), 1u);
  EXPECT_TRUE(TU.Globals[0]->Ty->isPtr());
}

TEST(Parser, EnumConstants) {
  DiagEngine D;
  TranslationUnit TU;
  ASSERT_TRUE(parseTranslationUnit(
      "typedef enum { free_lock, held } lock_t; enum { A = 5, B };", TU, D))
      << D.str();
  EXPECT_EQ(TU.EnumConstants["free_lock"], 0);
  EXPECT_EQ(TU.EnumConstants["held"], 1);
  EXPECT_EQ(TU.EnumConstants["A"], 5);
  EXPECT_EQ(TU.EnumConstants["B"], 6);
}

TEST(Parser, FunctionWithBody) {
  DiagEngine D;
  TranslationUnit TU;
  ASSERT_TRUE(parseTranslationUnit(
      "int add(int a, int b) { return a + b; }", TU, D))
      << D.str();
  FuncDecl *F = TU.findFunction("add");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Params.size(), 2u);
  ASSERT_NE(F->Body, nullptr);
  EXPECT_EQ(F->Body->Body.size(), 1u);
  EXPECT_EQ(F->Body->Body[0]->K, CStmt::Kind::Return);
}

TEST(Parser, ExternThenDefinitionMerged) {
  DiagEngine D;
  TranslationUnit TU;
  ASSERT_TRUE(parseTranslationUnit(
      "int f(int x); int f(int x) { return x; }", TU, D))
      << D.str();
  FuncDecl *F = TU.findFunction("f");
  ASSERT_NE(F, nullptr);
  EXPECT_NE(F->Body, nullptr);
}

TEST(Parser, CastVsParen) {
  DiagEngine D;
  TranslationUnit TU;
  // (unsigned) x is a cast; (x) is not.
  ASSERT_TRUE(parseTranslationUnit(
      "int g(int x) { int y; y = (unsigned) x; return (y); }", TU, D))
      << D.str();
}

TEST(Parser, PointerCast) {
  DiagEngine D;
  TranslationUnit TU;
  ASSERT_TRUE(parseTranslationUnit("typedef struct n { int v; } n_t;\n"
                                   "int h(void *p) { n_t *q; q = (n_t *) p; "
                                   "return q->v; }",
                                   TU, D))
      << D.str();
}

TEST(Parser, MultipleDeclaratorsPerLine) {
  DiagEngine D;
  TranslationUnit TU;
  ASSERT_TRUE(parseTranslationUnit(
      "typedef struct n { struct n *l, *r; int v; } n_t;\n"
      "void f(void) { n_t *a, *b; int x, y; }",
      TU, D))
      << D.str();
  const Type *T = TU.Typedefs["n_t"];
  EXPECT_EQ(T->Struct->Fields.size(), 3u);
  EXPECT_TRUE(T->Struct->Fields[0].Ty->isPtr());
  EXPECT_TRUE(T->Struct->Fields[1].Ty->isPtr());
}

TEST(Parser, ControlFlowForms) {
  DiagEngine D;
  TranslationUnit TU;
  ASSERT_TRUE(parseTranslationUnit(
      "void f(int n) {\n"
      "  int i; int s; s = 0;\n"
      "  for (i = 0; i < n; i++) { s += i; if (s > 10) break; }\n"
      "  while (s > 0) { s--; if (s == 3) continue; }\n"
      "  do { s++; } while (s < 2);\n"
      "}",
      TU, D))
      << D.str();
}

TEST(Parser, AtomicBlock) {
  DiagEngine D;
  TranslationUnit TU;
  ASSERT_TRUE(parseTranslationUnit(
      "int cas(int *loc, int old, int nw) { int r;\n"
      "  atomic { r = (*loc == old); if (r) *loc = nw; } return r; }",
      TU, D))
      << D.str();
  FuncDecl *F = TU.findFunction("cas");
  ASSERT_NE(F, nullptr);
  bool SawAtomic = false;
  for (const CStmt *S : F->Body->Body)
    if (S->K == CStmt::Kind::Atomic)
      SawAtomic = true;
  EXPECT_TRUE(SawAtomic);
}

TEST(Parser, ArrayFieldAndIndexing) {
  DiagEngine D;
  TranslationUnit TU;
  ASSERT_TRUE(parseTranslationUnit("struct s { long a; int b[3]; };\n"
                                   "struct s x;\n"
                                   "int f(int i) { return x.b[i]; }",
                                   TU, D))
      << D.str();
}

TEST(Parser, ErrorOnGoto) {
  DiagEngine D;
  TranslationUnit TU;
  EXPECT_FALSE(
      parseTranslationUnit("void f(void) { goto out; out: return; }", TU, D));
}

TEST(Parser, TernaryConditional) {
  DiagEngine D;
  TranslationUnit TU;
  ASSERT_TRUE(parseTranslationUnit("int f(int a) { return a ? 1 : 2; }", TU,
                                   D))
      << D.str();
}

//===----------------------------------------------------------------------===//
// Lowering
//===----------------------------------------------------------------------===//

lsl::Program lower(const std::string &Src, bool ExpectOk = true,
                   LoweringOptions Opts = LoweringOptions()) {
  DiagEngine D;
  lsl::Program Prog;
  bool Ok = compileC(Src, {}, Prog, D, Opts);
  EXPECT_EQ(Ok, ExpectOk) << D.str();
  return Prog;
}

/// Counts statements of kind \p K in a whole statement tree.
int countKind(const std::vector<lsl::Stmt *> &Body, lsl::StmtKind K) {
  int N = 0;
  for (const lsl::Stmt *S : Body) {
    if (S->K == K)
      ++N;
    N += countKind(S->Body, K);
  }
  return N;
}

TEST(Lowering, SimpleFunction) {
  lsl::Program Prog = lower("int add(int a, int b) { return a + b; }");
  lsl::Proc *P = Prog.findProc("add");
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->NumParams, 2);
  ASSERT_EQ(P->RetRegs.size(), 1u);
  // Body: one outer block containing the add, the copy, and the break.
  ASSERT_EQ(P->Body.size(), 1u);
  EXPECT_EQ(P->Body[0]->K, lsl::StmtKind::Block);
}

TEST(Lowering, GlobalInitProcedure) {
  lsl::Program Prog = lower("int x = 5; int y;");
  EXPECT_EQ(Prog.globals().size(), 2u);
  lsl::Proc *P = Prog.findProc("__global_init");
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(countKind(P->Body, lsl::StmtKind::Store), 1);
}

TEST(Lowering, LoadStoreThroughPointer) {
  lsl::Program Prog =
      lower("void set(int *p, int v) { *p = v; } int get(int *p) { return "
            "*p; }");
  EXPECT_EQ(countKind(Prog.findProc("set")->Body, lsl::StmtKind::Store), 1);
  EXPECT_EQ(countKind(Prog.findProc("get")->Body, lsl::StmtKind::Load), 1);
}

TEST(Lowering, MemberAccessUsesPtrField) {
  lsl::Program Prog = lower(
      "typedef struct n { struct n *next; int value; } n_t;\n"
      "int val(n_t *p) { return p->value; }");
  lsl::Proc *P = Prog.findProc("val");
  int PtrFields = 0;
  std::vector<const lsl::Stmt *> Work(P->Body.begin(), P->Body.end());
  while (!Work.empty()) {
    const lsl::Stmt *S = Work.back();
    Work.pop_back();
    if (S->K == lsl::StmtKind::PrimOp &&
        S->Op == lsl::PrimOpKind::PtrField && S->Imm == 1)
      ++PtrFields;
    for (const lsl::Stmt *C : S->Body)
      Work.push_back(C);
  }
  EXPECT_EQ(PtrFields, 1);
}

TEST(Lowering, FenceEmitted) {
  lsl::Program Prog =
      lower("extern void fence(char *k);\n"
            "void f(void) { fence(\"store-store\"); fence(\"load-load\"); }");
  lsl::Proc *P = Prog.findProc("f");
  EXPECT_EQ(countKind(P->Body, lsl::StmtKind::Fence), 2);
}

TEST(Lowering, StripFencesOption) {
  LoweringOptions Opts;
  Opts.StripFences = true;
  lsl::Program Prog =
      lower("extern void fence(char *k);\n"
            "void f(void) { fence(\"store-store\"); }",
            true, Opts);
  EXPECT_EQ(countKind(Prog.findProc("f")->Body, lsl::StmtKind::Fence), 0);
}

TEST(Lowering, StripSpecificFenceLine) {
  LoweringOptions Opts;
  Opts.StripFenceLines = {3};
  lsl::Program Prog = lower("extern void fence(char *k);\n"
                            "void f(void) {\n"
                            "  fence(\"store-store\");\n"
                            "  fence(\"load-load\");\n"
                            "}",
                            true, Opts);
  EXPECT_EQ(countKind(Prog.findProc("f")->Body, lsl::StmtKind::Fence), 1);
}

TEST(Lowering, AtomicCas) {
  lsl::Program Prog = lower(
      "int cas(int *loc, int old, int nw) { int r;\n"
      "  atomic { r = (*loc == old); if (r) *loc = nw; } return r; }");
  lsl::Proc *P = Prog.findProc("cas");
  EXPECT_EQ(countKind(P->Body, lsl::StmtKind::Atomic), 1);
  EXPECT_EQ(countKind(P->Body, lsl::StmtKind::Load), 1);
  EXPECT_EQ(countKind(P->Body, lsl::StmtKind::Store), 1);
}

TEST(Lowering, NewNodeBecomesAlloc) {
  lsl::Program Prog = lower(
      "typedef struct n { int v; } n_t;\n"
      "extern n_t *new_node();\n"
      "n_t *mk(void) { n_t *p; p = new_node(); p->v = 0; return p; }");
  EXPECT_EQ(countKind(Prog.findProc("mk")->Body, lsl::StmtKind::Alloc), 1);
}

TEST(Lowering, AddressTakenLocalUsesMemory) {
  lsl::Program Prog = lower("extern void use(int *p);\n"
                            "void use(int *p) { *p = 1; }\n"
                            "int f(void) { int v; use(&v); return v; }");
  lsl::Proc *P = Prog.findProc("f");
  // v is address-taken: an alloc for the slot plus a load for the return.
  EXPECT_EQ(countKind(P->Body, lsl::StmtKind::Alloc), 1);
  EXPECT_GE(countKind(P->Body, lsl::StmtKind::Load), 1);
}

TEST(Lowering, SpinLockBuiltins) {
  lsl::Program Prog =
      lower("typedef enum { fr, hd } lock_t;\n"
            "extern void spin_lock(lock_t *l);\n"
            "extern void spin_unlock(lock_t *l);\n"
            "lock_t m;\n"
            "void crit(void) { spin_lock(&m); spin_unlock(&m); }");
  lsl::Proc *P = Prog.findProc("crit");
  EXPECT_EQ(countKind(P->Body, lsl::StmtKind::Atomic), 2);
  EXPECT_EQ(countKind(P->Body, lsl::StmtKind::Fence), 4);
  EXPECT_EQ(countKind(P->Body, lsl::StmtKind::Assume), 1);
  EXPECT_EQ(countKind(P->Body, lsl::StmtKind::Assert), 1);
}

TEST(Lowering, ShortCircuitGuardsRHS) {
  lsl::Program Prog = lower(
      "typedef struct n { struct n *next; int v; } n_t;\n"
      "int f(n_t *p) { return p != 0 && p->v == 1; }");
  lsl::Proc *P = Prog.findProc("f");
  // The RHS load must sit inside a block guarded by a break.
  ASSERT_EQ(countKind(P->Body, lsl::StmtKind::Block), 2); // func + &&
}

TEST(Lowering, WhileLoopShape) {
  lsl::Program Prog = lower("int f(int n) { int s; s = 0;\n"
                            "  while (n > 0) { s = s + n; n = n - 1; }\n"
                            "  return s; }");
  lsl::Proc *P = Prog.findProc("f");
  EXPECT_EQ(countKind(P->Body, lsl::StmtKind::Continue), 1);
  EXPECT_GE(countKind(P->Body, lsl::StmtKind::Break), 2); // loop exit + ret
}

TEST(Lowering, ObserveBuiltin) {
  lsl::Program Prog = lower("extern void observe(int v);\n"
                            "void f(int x) { observe(x); }");
  EXPECT_EQ(countKind(Prog.findProc("f")->Body, lsl::StmtKind::Observe), 1);
}

TEST(Lowering, PtrMarkBuiltins) {
  lsl::Program Prog = lower(
      "typedef struct n { struct n *next; } n_t;\n"
      "extern n_t *ptr_mark(n_t *p, int b);\n"
      "extern int ptr_is_marked(n_t *p);\n"
      "extern n_t *ptr_unmark(n_t *p);\n"
      "n_t *f(n_t *p) { if (ptr_is_marked(p)) return ptr_unmark(p);\n"
      "  return ptr_mark(p, 1); }");
  lsl::Proc *P = Prog.findProc("f");
  ASSERT_NE(P, nullptr);
  int Marks = 0;
  std::vector<const lsl::Stmt *> Work(P->Body.begin(), P->Body.end());
  while (!Work.empty()) {
    const lsl::Stmt *S = Work.back();
    Work.pop_back();
    if (S->K == lsl::StmtKind::PrimOp &&
        (S->Op == lsl::PrimOpKind::PtrMark ||
         S->Op == lsl::PrimOpKind::PtrGetMark ||
         S->Op == lsl::PrimOpKind::PtrClearMark))
      ++Marks;
    for (const lsl::Stmt *C : S->Body)
      Work.push_back(C);
  }
  EXPECT_EQ(Marks, 3);
}

TEST(Lowering, Fig9QueueCompilesEndToEnd) {
  // The paper's Fig. 9 non-blocking queue (lightly adapted to the subset).
  const char *Src = R"(
typedef int value_t;
typedef struct node { struct node *next; value_t value; } node_t;
typedef struct queue { node_t *head; node_t *tail; } queue_t;
extern void assert(int expr);
extern void fence(char *type);
extern node_t *new_node();
extern void delete_node(node_t *node);
int cas(void *loc, unsigned old, unsigned nw) {
  int r;
  atomic { r = (*loc == old); if (r) *loc = nw; }
  return r;
}
void init_queue(queue_t *queue) {
  node_t *node = new_node();
  node->next = 0;
  queue->head = queue->tail = node;
}
void enqueue(queue_t *queue, value_t value) {
  node_t *node, *tail, *next;
  node = new_node();
  node->value = value;
  node->next = 0;
  fence("store-store");
  while (1) {
    tail = queue->tail;
    fence("load-load");
    next = tail->next;
    fence("load-load");
    if (tail == queue->tail)
      if (next == 0) {
        if (cas(&tail->next, (unsigned) next, (unsigned) node))
          break;
      } else
        cas(&queue->tail, (unsigned) tail, (unsigned) next);
  }
  fence("store-store");
  cas(&queue->tail, (unsigned) tail, (unsigned) node);
}
int dequeue(queue_t *queue, value_t *pvalue) {
  node_t *head, *tail, *next;
  while (1) {
    head = queue->head;
    fence("load-load");
    tail = queue->tail;
    fence("load-load");
    next = head->next;
    fence("load-load");
    if (head == queue->head) {
      if (head == tail) {
        if (next == 0)
          return 0;
        cas(&queue->tail, (unsigned) tail, (unsigned) next);
      } else {
        *pvalue = next->value;
        if (cas(&queue->head, (unsigned) head, (unsigned) next))
          break;
      }
    }
  }
  delete_node(head);
  return 1;
}
)";
  lsl::Program Prog = lower(Src);
  EXPECT_NE(Prog.findProc("enqueue"), nullptr);
  EXPECT_NE(Prog.findProc("dequeue"), nullptr);
  EXPECT_NE(Prog.findProc("init_queue"), nullptr);
  lsl::Proc *Enq = Prog.findProc("enqueue");
  EXPECT_EQ(countKind(Enq->Body, lsl::StmtKind::Fence), 4);
  EXPECT_EQ(countKind(Enq->Body, lsl::StmtKind::Call), 3);
  // 'queue = tail = node' style chained assignment in init_queue.
  lsl::Proc *Init = Prog.findProc("init_queue");
  EXPECT_EQ(countKind(Init->Body, lsl::StmtKind::Store), 3);
}

TEST(Lowering, PrinterProducesStableText) {
  lsl::Program Prog = lower("int f(int a) { return a; }");
  std::string Text = lsl::printProgram(Prog);
  EXPECT_NE(Text.find("proc f("), std::string::npos);
  EXPECT_NE(Text.find("break"), std::string::npos);
}

} // namespace
