//===--- FenceSynthTests.cpp - automatic fence placement --------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// The synthesizer automates the Sec. 4.2 workflow: starting from the
// fence-stripped implementations it must rediscover a sufficient and
// 1-minimal fence placement on the relaxed models, refuse to "fix"
// algorithmic bugs (snark) or sequential bugs (lazylist's missing
// initialization), and adapt the fence kinds to the target model (PSO
// needs no load-load fences, TSO needs none at all).
//
//===----------------------------------------------------------------------===//

#include "harness/FenceSynth.h"
#include "frontend/Lowering.h"
#include "impls/Impls.h"

#include "gtest/gtest.h"

#include <algorithm>

using namespace checkfence;
using namespace checkfence::harness;

namespace {

constexpr auto SC = memmodel::ModelParams::sc();
constexpr auto TSO = memmodel::ModelParams::tso();
constexpr auto PSO = memmodel::ModelParams::pso();
constexpr auto RLX = memmodel::ModelParams::relaxed();

int lineCount(const std::string &S) {
  return static_cast<int>(std::count(S.begin(), S.end(), '\n'));
}

/// Synthesis options whose eligible region excludes the shared prelude
/// (fences belong in the implementation, not inside cas/lock builtins).
SynthOptions implRegionOptions(memmodel::ModelParams Model) {
  SynthOptions O;
  O.Check.Model = Model;
  O.MinLine = lineCount(impls::preludeSource()) + 1;
  return O;
}

std::string describe(const SynthResult &R) {
  std::string S = R.Message + "\n";
  for (const std::string &L : R.Log)
    S += "  " + L + "\n";
  for (const FencePlacement &P : R.Fences)
    S += "  + " + placementStr(P) + "\n";
  return S;
}

TEST(FenceSynth, RepairsMsnOnRelaxed) {
  SynthOptions O = implRegionOptions(RLX);
  SynthResult R = synthesizeFences(impls::sourceFor("msn"),
                                   {testByName("T0")}, O);
  ASSERT_TRUE(R.Success) << describe(R);
  // T0 needs at least the publication fence and a dependent-load fence.
  EXPECT_GE(R.Fences.size(), 2u) << describe(R);
  // Sec. 4.2: only load-load and store-store fences are needed by the
  // studied algorithms; the synthesizer may additionally place store-load
  // fences to defeat forwarding, but never needs load-store.
  for (const FencePlacement &P : R.Fences)
    EXPECT_NE(P.Kind, lsl::FenceKind::LoadStore) << placementStr(P);
  // Every fence is inside the implementation region.
  for (const FencePlacement &P : R.Fences)
    EXPECT_GE(P.Line, O.MinLine) << placementStr(P);
}

TEST(FenceSynth, RepairsMs2OnRelaxed) {
  SynthOptions O = implRegionOptions(RLX);
  SynthResult R = synthesizeFences(impls::sourceFor("ms2"),
                                   {testByName("T0")}, O);
  ASSERT_TRUE(R.Success) << describe(R);
  EXPECT_GE(R.Fences.size(), 1u) << describe(R);
}

TEST(FenceSynth, PsoNeedsNoLoadLoadFences) {
  // PSO preserves load-load and load-store order, so repairs can only
  // involve store-store (publication) and store-load (forwarding) fences.
  SynthOptions O = implRegionOptions(PSO);
  SynthResult R = synthesizeFences(impls::sourceFor("msn"),
                                   {testByName("T0")}, O);
  ASSERT_TRUE(R.Success) << describe(R);
  EXPECT_GE(R.Fences.size(), 1u) << describe(R);
  for (const FencePlacement &P : R.Fences) {
    EXPECT_NE(P.Kind, lsl::FenceKind::LoadLoad) << placementStr(P);
    EXPECT_NE(P.Kind, lsl::FenceKind::LoadStore) << placementStr(P);
  }
}

TEST(FenceSynth, TsoNeedsNothing) {
  // The paper's Sec. 4.2 observation, as seen by the synthesizer: the
  // unfenced queue is already correct on TSO.
  SynthOptions O = implRegionOptions(TSO);
  SynthResult R = synthesizeFences(impls::sourceFor("msn"),
                                   {testByName("T0")}, O);
  ASSERT_TRUE(R.Success) << describe(R);
  EXPECT_TRUE(R.Fences.empty()) << describe(R);
}

TEST(FenceSynth, RefusesAlgorithmicBug) {
  // snark's D0 failure exists under sequential consistency, where program
  // order embeds into the memory order: the counterexample contains no
  // inversion, so no fence can address it.
  SynthOptions O = implRegionOptions(SC);
  SynthResult R = synthesizeFences(impls::sourceFor("snark"),
                                   {testByName("D0")}, O);
  ASSERT_FALSE(R.Success) << describe(R);
  EXPECT_NE(R.Message.find("not fixable by fences"), std::string::npos)
      << R.Message;
}

TEST(FenceSynth, RefusesSequentialBug) {
  SynthOptions O = implRegionOptions(RLX);
  O.Defines = {"LAZYLIST_INIT_BUG"};
  SynthResult R = synthesizeFences(impls::sourceFor("lazylist"),
                                   {testByName("Sac")}, O);
  ASSERT_FALSE(R.Success) << describe(R);
  EXPECT_NE(R.Message.find("serial execution"), std::string::npos)
      << R.Message;
}

TEST(FenceSynth, MinimizedPlacementIsNecessary) {
  // Dropping any synthesized fence must re-break some test: re-run the
  // synthesis check loop with each fence removed by hand.
  SynthOptions O = implRegionOptions(RLX);
  SynthResult R = synthesizeFences(impls::sourceFor("msn"),
                                   {testByName("T0")}, O);
  ASSERT_TRUE(R.Success) << describe(R);

  frontend::LoweringOptions LO;
  LO.StripFences = true;
  for (size_t Drop = 0; Drop < R.Fences.size(); ++Drop) {
    std::vector<FencePlacement> Without = R.Fences;
    Without.erase(Without.begin() + Drop);
    frontend::DiagEngine Diags;
    lsl::Program Impl;
    ASSERT_TRUE(frontend::compileC(impls::sourceFor("msn"), {}, Impl,
                                   Diags, LO));
    applyFencePlacements(Impl, Without);
    TestSpec Test = testByName("T0");
    std::vector<std::string> Threads = buildTestThreads(Impl, Test);
    checker::CheckOptions CO;
    CO.Model = RLX;
    checker::CheckResult C = checker::runCheck(Impl, Threads, CO);
    EXPECT_EQ(C.Status, checker::CheckStatus::Fail)
        << "placement stays correct without "
        << placementStr(R.Fences[Drop]);
  }
}

TEST(FenceSynth, ApplyPlacementsInsertsBeforeTheLine) {
  // Functional check of the insertion machinery on a publication litmus:
  // the serial spec is "the error flag never fires", and repairing it on
  // Relaxed requires exactly a store-store fence before the flag store
  // and a load-load fence before the data load (the paper's "incomplete
  // initialization" repair, Sec. 4.3).
  const char *Src = "extern void assert(int v);\n"       // line 1
                    "extern void fence(char *type);\n"   // line 2
                    "int data; int flag;\n"              // line 3
                    "void init_op(void) { data = 0; flag = 0; }\n"
                    "void producer_op(void) {\n"         // line 5
                    "  data = 1;\n"                      // line 6
                    "  flag = 1;\n"                      // line 7
                    "}\n"
                    "void consumer_op(void) {\n"         // line 9
                    "  int f = flag;\n"                  // line 10
                    "  int d = data;\n"                  // line 11
                    "  if (f) assert(d == 1);\n"         // line 12
                    "}\n";
  SynthOptions O;
  O.Check.Model = RLX;
  TestSpec Test;
  Test.Name = "mp";
  Test.Threads.push_back({OpSpec{"producer_op", 0, false, false}});
  Test.Threads.push_back({OpSpec{"consumer_op", 0, false, false}});
  SynthResult R = synthesizeFences(Src, {Test}, O);
  ASSERT_TRUE(R.Success) << describe(R);
  ASSERT_EQ(R.Fences.size(), 2u) << describe(R);
  EXPECT_EQ(R.Fences[0].Line, 7);
  EXPECT_EQ(R.Fences[0].Kind, lsl::FenceKind::StoreStore);
  EXPECT_EQ(R.Fences[1].Line, 11);
  EXPECT_EQ(R.Fences[1].Kind, lsl::FenceKind::LoadLoad);
}

} // namespace
