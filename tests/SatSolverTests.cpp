//===--- SatSolverTests.cpp - unit & property tests for the CDCL solver ---===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "sat/Dimacs.h"
#include "sat/Solver.h"

#include "gtest/gtest.h"

#include <random>

using namespace checkfence;
using namespace checkfence::sat;

namespace {

Lit pos(Var V) { return Lit::make(V); }
Lit neg(Var V) { return Lit::make(V, true); }

//===----------------------------------------------------------------------===//
// Reference solver: a tiny recursive DPLL used as the oracle in property
// tests. Exponential, but only ever run on small random formulas.
//===----------------------------------------------------------------------===//

class ReferenceDpll {
public:
  explicit ReferenceDpll(const Cnf &F) : Formula(F) {
    Assignment.assign(F.NumVars, -1);
  }

  bool solve() { return solveFrom(0); }

private:
  bool clauseStatusOk(bool &AllAssignedFalse, const std::vector<Lit> &C) {
    AllAssignedFalse = true;
    for (Lit L : C) {
      int A = Assignment[L.var()];
      if (A == -1) {
        AllAssignedFalse = false;
        continue;
      }
      bool LitTrue = (A == 1) != L.negated();
      if (LitTrue)
        return true;
    }
    return false;
  }

  bool consistent() {
    for (const auto &C : Formula.Clauses) {
      bool AllFalse;
      if (!clauseStatusOk(AllFalse, C) && AllFalse)
        return false;
    }
    return true;
  }

  bool solveFrom(int V) {
    if (!consistent())
      return false;
    if (V == Formula.NumVars)
      return true;
    for (int B = 0; B < 2; ++B) {
      Assignment[V] = B;
      if (solveFrom(V + 1))
        return true;
    }
    Assignment[V] = -1;
    return false;
  }

  const Cnf &Formula;
  std::vector<int> Assignment;
};

bool modelSatisfies(const Solver &S, const Cnf &F) {
  for (const auto &C : F.Clauses) {
    bool Sat = false;
    for (Lit L : C)
      if (S.modelValue(L) == LBool::True)
        Sat = true;
    if (!Sat)
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Unit tests
//===----------------------------------------------------------------------===//

TEST(SatSolver, EmptyFormulaIsSat) {
  Solver S;
  EXPECT_EQ(S.solve(), SolveResult::Sat);
}

TEST(SatSolver, SingleUnit) {
  Solver S;
  Var A = S.newVar();
  EXPECT_TRUE(S.addClause(pos(A)));
  EXPECT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_EQ(S.modelValue(A), LBool::True);
}

TEST(SatSolver, ContradictingUnits) {
  Solver S;
  Var A = S.newVar();
  EXPECT_TRUE(S.addClause(pos(A)));
  EXPECT_FALSE(S.addClause(neg(A)));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
  EXPECT_FALSE(S.okay());
}

TEST(SatSolver, EmptyClauseIsUnsat) {
  Solver S;
  EXPECT_FALSE(S.addClause(std::vector<Lit>{}));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
}

TEST(SatSolver, TautologyIgnored) {
  Solver S;
  Var A = S.newVar();
  EXPECT_TRUE(S.addClause(pos(A), neg(A)));
  EXPECT_EQ(S.solve(), SolveResult::Sat);
}

TEST(SatSolver, DuplicateLiteralsMerged) {
  Solver S;
  Var A = S.newVar(), B = S.newVar();
  EXPECT_TRUE(S.addClause({pos(A), pos(A), pos(B)}));
  EXPECT_TRUE(S.addClause(neg(A)));
  EXPECT_TRUE(S.addClause(neg(B), neg(A)));
  EXPECT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_EQ(S.modelValue(A), LBool::False);
}

TEST(SatSolver, ImplicationChain) {
  // a, a->b, b->c, c->d  forces d.
  Solver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar(), D = S.newVar();
  S.addClause(pos(A));
  S.addClause(neg(A), pos(B));
  S.addClause(neg(B), pos(C));
  S.addClause(neg(C), pos(D));
  EXPECT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_EQ(S.modelValue(D), LBool::True);
}

TEST(SatSolver, PigeonHole3Into2IsUnsat) {
  // Pigeonhole principle PHP(3,2): forces real conflict-driven search.
  Solver S;
  // X[p][h]: pigeon p sits in hole h.
  Var X[3][2];
  for (auto &Row : X)
    for (Var &V : Row)
      V = S.newVar();
  for (int P = 0; P < 3; ++P)
    S.addClause(pos(X[P][0]), pos(X[P][1]));
  for (int H = 0; H < 2; ++H)
    for (int P1 = 0; P1 < 3; ++P1)
      for (int P2 = P1 + 1; P2 < 3; ++P2)
        S.addClause(neg(X[P1][H]), neg(X[P2][H]));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
}

TEST(SatSolver, PigeonHole5Into4IsUnsat) {
  Solver S;
  const int P = 5, H = 4;
  std::vector<std::vector<Var>> X(P, std::vector<Var>(H));
  for (auto &Row : X)
    for (Var &V : Row)
      V = S.newVar();
  for (int I = 0; I < P; ++I) {
    std::vector<Lit> C;
    for (int J = 0; J < H; ++J)
      C.push_back(pos(X[I][J]));
    S.addClause(C);
  }
  for (int J = 0; J < H; ++J)
    for (int I1 = 0; I1 < P; ++I1)
      for (int I2 = I1 + 1; I2 < P; ++I2)
        S.addClause(neg(X[I1][J]), neg(X[I2][J]));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
  EXPECT_GT(S.stats().Conflicts, 0u);
}

TEST(SatSolver, AssumptionsSatAndUnsat) {
  Solver S;
  Var A = S.newVar(), B = S.newVar();
  S.addClause(neg(A), pos(B)); // a -> b
  EXPECT_EQ(S.solve({pos(A)}), SolveResult::Sat);
  EXPECT_EQ(S.modelValue(B), LBool::True);
  S.addClause(neg(B)); // now b false, so a must be false
  EXPECT_EQ(S.solve({pos(A)}), SolveResult::Unsat);
  EXPECT_TRUE(S.okay()) << "assumption failure must not poison the solver";
  EXPECT_EQ(S.solve({neg(A)}), SolveResult::Sat);
}

TEST(SatSolver, ConflictAssumptionsReported) {
  Solver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addClause(neg(A), neg(B)); // not both a and b
  EXPECT_EQ(S.solve({pos(A), pos(B), pos(C)}), SolveResult::Unsat);
  // The reported conflict clause mentions only relevant assumptions.
  for (Lit L : S.conflictAssumptions())
    EXPECT_NE(L.var(), C);
}

TEST(SatSolver, IncrementalBlockingClauseEnumeration) {
  // Enumerate all 8 models of a 3-variable unconstrained formula by adding
  // blocking clauses; this is exactly the spec-mining pattern.
  Solver S;
  Var V0 = S.newVar(), V1 = S.newVar(), V2 = S.newVar();
  S.addClause(pos(V0), neg(V0)); // touch the vars
  S.addClause(pos(V1), neg(V1));
  S.addClause(pos(V2), neg(V2));
  int Count = 0;
  while (S.solve() == SolveResult::Sat) {
    ++Count;
    ASSERT_LE(Count, 8);
    std::vector<Lit> Block;
    for (Var V : {V0, V1, V2}) {
      bool IsTrue = S.modelValue(V) == LBool::True;
      Block.push_back(Lit::make(V, IsTrue)); // negated current value
    }
    if (!S.addClause(Block))
      break;
  }
  EXPECT_EQ(Count, 8);
}

TEST(SatSolver, UnsatCoreStyleUse) {
  Solver S;
  std::vector<Var> Sel;
  // Clause group i: selector_i -> (x_i), and a final clause not(x_0) or
  // not(x_1).
  Var X0 = S.newVar(), X1 = S.newVar();
  Var S0 = S.newVar(), S1 = S.newVar();
  S.addClause(neg(S0), pos(X0));
  S.addClause(neg(S1), pos(X1));
  S.addClause(neg(X0), neg(X1));
  EXPECT_EQ(S.solve({pos(S0), pos(S1)}), SolveResult::Unsat);
  EXPECT_EQ(S.solve({pos(S0)}), SolveResult::Sat);
  EXPECT_EQ(S.solve({pos(S1)}), SolveResult::Sat);
}

TEST(SatSolver, LargeChainPerformance) {
  // 2000-variable implication chain solves instantly if propagation works.
  Solver S;
  const int N = 2000;
  std::vector<Var> V(N);
  for (int I = 0; I < N; ++I)
    V[I] = S.newVar();
  S.addClause(pos(V[0]));
  for (int I = 0; I + 1 < N; ++I)
    S.addClause(neg(V[I]), pos(V[I + 1]));
  EXPECT_EQ(S.solve(), SolveResult::Sat);
  EXPECT_EQ(S.modelValue(V[N - 1]), LBool::True);
}

TEST(SatSolver, MemoryAccounting) {
  Solver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  size_t Before = S.memoryBytes();
  S.addClause(pos(A), pos(B), pos(C));
  EXPECT_GT(S.memoryBytes(), Before);
}

//===----------------------------------------------------------------------===//
// DIMACS round-trip
//===----------------------------------------------------------------------===//

TEST(Dimacs, RoundTrip) {
  Cnf F;
  F.NumVars = 3;
  F.addClause({pos(0), neg(1)});
  F.addClause({pos(2)});
  std::string Text = writeDimacs(F);
  Cnf G;
  ASSERT_TRUE(parseDimacs(Text, G));
  EXPECT_EQ(G.NumVars, 3);
  ASSERT_EQ(G.Clauses.size(), 2u);
  EXPECT_EQ(G.Clauses[0], F.Clauses[0]);
  EXPECT_EQ(G.Clauses[1], F.Clauses[1]);
}

TEST(Dimacs, ParseWithComments) {
  Cnf G;
  ASSERT_TRUE(parseDimacs("c hello\np cnf 2 2\n1 -2 0\n2 0\n", G));
  EXPECT_EQ(G.NumVars, 2);
  EXPECT_EQ(G.Clauses.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Property tests: random 3-CNF vs the reference DPLL oracle.
//===----------------------------------------------------------------------===//

struct RandomCnfParams {
  int NumVars;
  int NumClauses;
  unsigned Seed;
};

class RandomCnfTest : public ::testing::TestWithParam<RandomCnfParams> {};

TEST_P(RandomCnfTest, AgreesWithReferenceDpll) {
  RandomCnfParams P = GetParam();
  std::mt19937 Rng(P.Seed);
  for (int Round = 0; Round < 20; ++Round) {
    Cnf F;
    F.NumVars = P.NumVars;
    std::uniform_int_distribution<int> VarDist(0, P.NumVars - 1);
    std::uniform_int_distribution<int> SignDist(0, 1);
    for (int I = 0; I < P.NumClauses; ++I) {
      std::vector<Lit> C;
      for (int K = 0; K < 3; ++K)
        C.push_back(Lit::make(VarDist(Rng), SignDist(Rng) == 1));
      F.addClause(C);
    }
    ReferenceDpll Ref(F);
    bool RefSat = Ref.solve();

    Solver S;
    bool LoadOk = loadIntoSolver(F, S);
    SolveResult R = LoadOk ? S.solve() : SolveResult::Unsat;
    EXPECT_EQ(R == SolveResult::Sat, RefSat)
        << "seed " << P.Seed << " round " << Round;
    if (R == SolveResult::Sat)
      EXPECT_TRUE(modelSatisfies(S, F));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomCnfTest,
    ::testing::Values(RandomCnfParams{6, 20, 1}, RandomCnfParams{8, 34, 2},
                      RandomCnfParams{10, 42, 3}, RandomCnfParams{12, 50, 4},
                      RandomCnfParams{9, 39, 5}, RandomCnfParams{11, 47, 6},
                      RandomCnfParams{13, 56, 7}, RandomCnfParams{7, 30, 8}));

// Incremental property: solving with assumptions must agree with solving a
// copy of the formula with those assumptions as units.
class IncrementalPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(IncrementalPropertyTest, AssumptionsMatchUnits) {
  std::mt19937 Rng(GetParam());
  std::uniform_int_distribution<int> VarDist(0, 9);
  std::uniform_int_distribution<int> SignDist(0, 1);

  Cnf F;
  F.NumVars = 10;
  for (int I = 0; I < 35; ++I) {
    std::vector<Lit> C;
    for (int K = 0; K < 3; ++K)
      C.push_back(Lit::make(VarDist(Rng), SignDist(Rng) == 1));
    F.addClause(C);
  }

  Solver Incremental;
  bool BaseOk = loadIntoSolver(F, Incremental);

  for (int Round = 0; Round < 8; ++Round) {
    std::vector<Lit> Assumps;
    for (int K = 0; K < 3; ++K)
      Assumps.push_back(Lit::make(VarDist(Rng), SignDist(Rng) == 1));

    Cnf G = F;
    for (Lit A : Assumps)
      G.addClause({A});
    ReferenceDpll Ref(G);
    bool RefSat = Ref.solve();

    SolveResult R = BaseOk ? Incremental.solve(Assumps) : SolveResult::Unsat;
    EXPECT_EQ(R == SolveResult::Sat, RefSat) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IncrementalPropertyTest,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u));

} // namespace
