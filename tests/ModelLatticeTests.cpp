//===--- ModelLatticeTests.cpp - parametric model lattice tests -------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// Covers the ModelParams descriptor: string grammar round-trips, the
// lattice order and its algebraic properties, the weakest-passing-model
// computation (pure and active-search forms), and end-to-end verdict
// monotonicity - anything that passes under a model must pass under every
// stronger model - on real implementations and catalog tests.
//
//===----------------------------------------------------------------------===//

#include "engine/WeakestModelSearch.h"
#include "harness/Catalog.h"
#include "impls/Impls.h"

#include <gtest/gtest.h>

#include <map>

using namespace checkfence;
using namespace checkfence::engine;
using namespace checkfence::harness;
using memmodel::atLeastAsStrong;
using memmodel::latticeModels;
using memmodel::ModelParams;
using memmodel::modelFromName;
using memmodel::modelName;
using memmodel::namedModels;
using memmodel::strictlyStronger;

namespace {

/// All 2^7 descriptor combinations.
std::vector<ModelParams> allCombos() {
  std::vector<ModelParams> Out;
  for (int Bits = 0; Bits < 128; ++Bits) {
    ModelParams P;
    P.OrderLoadLoad = Bits & 1;
    P.OrderLoadStore = Bits & 2;
    P.OrderStoreLoad = Bits & 4;
    P.OrderStoreStore = Bits & 8;
    P.StoreForwarding = Bits & 16;
    P.MultiCopyAtomic = Bits & 32;
    P.SerialOps = Bits & 64;
    Out.push_back(P);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Descriptor string grammar
//===----------------------------------------------------------------------===//

TEST(ModelParamsParser, RoundTripsEveryCombination) {
  for (const ModelParams &P : allCombos()) {
    auto Back = modelFromName(P.str());
    ASSERT_TRUE(Back.has_value()) << P.str();
    EXPECT_EQ(P, *Back) << P.str();
  }
}

TEST(ModelParamsParser, RoundTripsEveryDisplayName) {
  // modelName substitutes registry names; both forms must parse back to
  // the same point.
  for (const ModelParams &P : allCombos()) {
    auto Back = modelFromName(modelName(P));
    ASSERT_TRUE(Back.has_value()) << modelName(P);
    EXPECT_EQ(P, *Back) << modelName(P);
  }
}

TEST(ModelParamsParser, NamedModelsParseByName) {
  for (const memmodel::NamedModel &N : namedModels()) {
    auto P = modelFromName(N.Name);
    ASSERT_TRUE(P.has_value()) << N.Name;
    EXPECT_EQ(N.Params, *P) << N.Name;
    EXPECT_EQ(N.Name, modelName(N.Params));
  }
}

TEST(ModelParamsParser, DescriptorStringsAndCaseInsensitivity) {
  EXPECT_EQ(ModelParams::pso(), *modelFromName("po:LL+LS,fwd"));
  EXPECT_EQ(ModelParams::pso(), *modelFromName("PO:ll+ls,FWD"));
  EXPECT_EQ(ModelParams::sc(), *modelFromName("po:all"));
  EXPECT_EQ(ModelParams::sc(), *modelFromName("po:ll+ls+sl+ss"));
  EXPECT_EQ(ModelParams::serial(), *modelFromName("po:all,serial"));
  EXPECT_EQ(ModelParams::relaxed(), *modelFromName("po:none,fwd"));
  EXPECT_EQ("pso", modelName(*modelFromName("po:ll+ls,fwd")));

  ModelParams NoMca = ModelParams::relaxed();
  NoMca.MultiCopyAtomic = false;
  EXPECT_EQ(NoMca, *modelFromName("po:none,fwd,nomca"));
  EXPECT_EQ("po:none,fwd,nomca", NoMca.str());
}

TEST(ModelParamsParser, RejectsMalformedStrings) {
  EXPECT_FALSE(modelFromName("").has_value());
  EXPECT_FALSE(modelFromName("po:").has_value());
  EXPECT_FALSE(modelFromName("po:xx").has_value());
  EXPECT_FALSE(modelFromName("po:ll+").has_value());
  EXPECT_FALSE(modelFromName("po:+ll").has_value());
  EXPECT_FALSE(modelFromName("po:ll,").has_value());
  EXPECT_FALSE(modelFromName("po:ll+ls,fwd,").has_value());
  EXPECT_FALSE(modelFromName("po:ll,,fwd").has_value());
  EXPECT_FALSE(modelFromName("po:ll,fwd,bogus").has_value());
  EXPECT_FALSE(modelFromName("weak").has_value());
  EXPECT_FALSE(modelFromName("ll+ls,fwd").has_value());
}

//===----------------------------------------------------------------------===//
// The lattice order
//===----------------------------------------------------------------------===//

TEST(ModelLattice, OrderIsReflexiveAndTransitive) {
  const std::vector<ModelParams> Combos = allCombos();
  for (const ModelParams &A : Combos)
    EXPECT_TRUE(atLeastAsStrong(A, A)) << A.str();
  for (const ModelParams &A : Combos)
    for (const ModelParams &B : Combos)
      for (const ModelParams &C : Combos)
        if (atLeastAsStrong(A, B) && atLeastAsStrong(B, C))
          EXPECT_TRUE(atLeastAsStrong(A, C))
              << A.str() << " >= " << B.str() << " >= " << C.str();
}

TEST(ModelLattice, SerialIsTheTop) {
  for (const ModelParams &P : allCombos()) {
    EXPECT_TRUE(atLeastAsStrong(ModelParams::serial(), P)) << P.str();
    if (!P.SerialOps)
      EXPECT_FALSE(atLeastAsStrong(P, ModelParams::serial())) << P.str();
  }
}

TEST(ModelLattice, DegenerateSerialPointsAreOnlySelfComparable) {
  // "po:none,serial" orders a thread's invocations freely - SC forbids
  // that, so it must not sit above (or below) anything but itself;
  // treating it as the top would make monotone inference unsound.
  ModelParams Degenerate = *modelFromName("po:none,serial");
  EXPECT_TRUE(atLeastAsStrong(Degenerate, Degenerate));
  EXPECT_FALSE(atLeastAsStrong(Degenerate, ModelParams::sc()));
  EXPECT_FALSE(atLeastAsStrong(ModelParams::sc(), Degenerate));
  EXPECT_FALSE(atLeastAsStrong(Degenerate, ModelParams::relaxed()));
  EXPECT_TRUE(atLeastAsStrong(ModelParams::serial(), Degenerate));
}

TEST(ModelLattice, NamedChainIsStrictlyDecreasing) {
  const std::vector<ModelParams> Chain = {
      ModelParams::serial(), ModelParams::sc(),  ModelParams::tso(),
      ModelParams::pso(),    ModelParams::rmo(), ModelParams::relaxed()};
  for (size_t I = 0; I < Chain.size(); ++I)
    for (size_t J = I + 1; J < Chain.size(); ++J)
      EXPECT_TRUE(strictlyStronger(Chain[I], Chain[J]))
          << modelName(Chain[I]) << " vs " << modelName(Chain[J]);
}

TEST(ModelLattice, ForwardingIsANoOpUnderStoreLoadOrder) {
  // sc with and without the forwarding bit are semantically equal: with
  // store-load program order preserved, every own earlier store is
  // already <M-before the load.
  ModelParams ScFwd = ModelParams::sc();
  ScFwd.StoreForwarding = true;
  EXPECT_TRUE(atLeastAsStrong(ModelParams::sc(), ScFwd));
  EXPECT_TRUE(atLeastAsStrong(ScFwd, ModelParams::sc()));
}

TEST(ModelLattice, ForwardingIsOtherwiseIncomparable) {
  // Without store-load order, adding forwarding changes which store a
  // load *must* read, in both directions.
  ModelParams NoFwd = *modelFromName("po:none");
  EXPECT_FALSE(atLeastAsStrong(NoFwd, ModelParams::relaxed()));
  EXPECT_FALSE(atLeastAsStrong(ModelParams::relaxed(), NoFwd));
}

TEST(ModelLattice, MultiCopyAtomicIsStronger) {
  ModelParams NoMca = ModelParams::relaxed();
  NoMca.MultiCopyAtomic = false;
  EXPECT_TRUE(atLeastAsStrong(ModelParams::relaxed(), NoMca));
  EXPECT_FALSE(atLeastAsStrong(NoMca, ModelParams::relaxed()));
}

TEST(ModelLattice, LatticeModelsAreDistinctAndSweepWorthy) {
  const std::vector<ModelParams> &L = latticeModels();
  ASSERT_GE(L.size(), 8u) << "the --models lattice sweep must cover >= 8 "
                             "models";
  for (size_t I = 0; I < L.size(); ++I)
    for (size_t J = I + 1; J < L.size(); ++J)
      EXPECT_NE(L[I], L[J]) << I << " vs " << J;
  // Strongest first, as documented: no later model is strictly stronger
  // than an earlier one.
  for (size_t I = 0; I < L.size(); ++I)
    for (size_t J = I + 1; J < L.size(); ++J)
      EXPECT_FALSE(strictlyStronger(L[J], L[I]))
          << modelName(L[J]) << " vs " << modelName(L[I]);
}

TEST(ModelLattice, NonMcaPointsAreRejectedByTheEncoder) {
  ModelParams NoMca = ModelParams::relaxed();
  NoMca.MultiCopyAtomic = false;
  RunOptions Opts;
  Opts.Check.Model = NoMca;
  checker::CheckResult R =
      runTest(impls::sourceFor("treiber"), testByName("U0"), Opts);
  EXPECT_EQ(checker::CheckStatus::Error, R.Status);
  EXPECT_NE(std::string::npos, R.Message.find("multi-copy"))
      << R.Message;
}

//===----------------------------------------------------------------------===//
// Weakest-passing computation
//===----------------------------------------------------------------------===//

TEST(WeakestPassing, PicksMinimalElements) {
  std::vector<ModelVerdict> V = {
      {ModelParams::serial(), true}, {ModelParams::sc(), true},
      {ModelParams::tso(), true},    {ModelParams::pso(), false},
      {ModelParams::relaxed(), false}};
  std::vector<ModelParams> W = weakestPassing(V);
  ASSERT_EQ(1u, W.size());
  EXPECT_EQ(ModelParams::tso(), W[0]);
}

TEST(WeakestPassing, KeepsIncomparableMinimals) {
  // tso {ll,ls,ss} and po:ll+ls+sl,fwd are incomparable; both survive.
  std::vector<ModelVerdict> V = {{ModelParams::sc(), true},
                                 {*modelFromName("po:ll+ls+sl,fwd"), true},
                                 {ModelParams::tso(), true},
                                 {ModelParams::pso(), false}};
  std::vector<ModelParams> W = weakestPassing(V);
  ASSERT_EQ(2u, W.size());
  EXPECT_EQ(*modelFromName("po:ll+ls+sl,fwd"), W[0]);
  EXPECT_EQ(ModelParams::tso(), W[1]);
}

TEST(WeakestPassing, EmptyWhenNothingPasses) {
  std::vector<ModelVerdict> V = {{ModelParams::sc(), false},
                                 {ModelParams::relaxed(), false}};
  EXPECT_TRUE(weakestPassing(V).empty());
}

TEST(WeakestPassing, DeduplicatesSemanticallyEqualModels) {
  ModelParams ScFwd = ModelParams::sc();
  ScFwd.StoreForwarding = true;
  std::vector<ModelVerdict> V = {{ModelParams::sc(), true}, {ScFwd, true}};
  std::vector<ModelParams> W = weakestPassing(V);
  ASSERT_EQ(1u, W.size());
  EXPECT_EQ(ModelParams::sc(), W[0]);
}

TEST(WeakestModelSearchTest, ActiveWalkPrunesByMonotonicity) {
  // A synthetic monotone verdict: pass exactly when at least as strong as
  // pso. The search must find pso as the unique weakest passing model
  // while actually running only a fraction of the lattice.
  int Ran = 0;
  CellFn Fake = [&Ran](const MatrixCell &Cell) {
    ++Ran;
    checker::CheckResult R;
    R.Status = atLeastAsStrong(Cell.Model, ModelParams::pso())
                   ? checker::CheckStatus::Pass
                   : checker::CheckStatus::Fail;
    return R;
  };
  // Feed the lattice strongest-first (its documented order); the search
  // must reorder it weakest-first internally, and do so deterministically.
  WeakestModelSearch Search(latticeModels());
  WeakestSummary S = Search.run("fake", "T0", Fake);
  ASSERT_EQ(1u, S.Weakest.size());
  EXPECT_EQ(ModelParams::pso(), S.Weakest[0]);
  EXPECT_EQ(static_cast<int>(latticeModels().size()),
            S.ModelsChecked);
  EXPECT_EQ(Ran, S.CellsRun);
  EXPECT_GT(S.CellsInferred, 0) << "monotone pruning never fired";
  EXPECT_LT(S.CellsRun, static_cast<int>(latticeModels().size()));

  // A second identical search must walk the same order and reach the
  // same result (the internal weakest-first sort is deterministic).
  WeakestSummary S2 = WeakestModelSearch(latticeModels()).run("fake", "T0",
                                                              Fake);
  EXPECT_EQ(S.CellsRun, S2.CellsRun) << "walk order not stable";
  ASSERT_EQ(S.Weakest.size(), S2.Weakest.size());
  EXPECT_EQ(S.Weakest[0], S2.Weakest[0]);
}

//===----------------------------------------------------------------------===//
// End-to-end monotonicity on real checks
//===----------------------------------------------------------------------===//

namespace {

/// Sweeps the full lattice for (Impl, Test) and asserts that the verdicts
/// are monotone: every model at least as strong as a passing model also
/// passes. Fills \p ByName with the verdicts for extra per-pair
/// assertions (void return: gtest ASSERTs require it).
void expectMonotone(const std::string &Impl, const std::string &Test,
                    bool StripFences, std::map<std::string, bool> &ByName) {
  RunOptions Opts;
  Opts.StripFences = StripFences;
  CellFn Run = catalogCellRunner(Opts);

  std::vector<ModelVerdict> Verdicts;
  for (const ModelParams &M : latticeModels()) {
    MatrixCell Cell;
    Cell.Impl = Impl;
    Cell.Test = Test;
    Cell.Model = M;
    checker::CheckResult R = Run(Cell);
    ASSERT_TRUE(R.Status == checker::CheckStatus::Pass ||
                R.Status == checker::CheckStatus::Fail)
        << Impl << ":" << Test << " on " << modelName(M) << ": "
        << R.Message;
    Verdicts.push_back({M, R.passed()});
    ByName[modelName(M)] = R.passed();
  }

  for (const ModelVerdict &Weak : Verdicts)
    for (const ModelVerdict &Strong : Verdicts) {
      if (!atLeastAsStrong(Strong.Model, Weak.Model))
        continue;
      if (Weak.Passed)
        EXPECT_TRUE(Strong.Passed)
            << Impl << ":" << Test << " passed under "
            << modelName(Weak.Model) << " but failed under the stronger "
            << modelName(Strong.Model);
    }
}

} // namespace

TEST(LatticeMonotonicity, TreiberU0Fenced) {
  std::map<std::string, bool> V;
  expectMonotone("treiber", "U0", false, V);
  EXPECT_TRUE(V["sc"]);
  EXPECT_TRUE(V["relaxed"]) << "shipped fences must verify on relaxed";
}

TEST(LatticeMonotonicity, TreiberUi2Stripped) {
  std::map<std::string, bool> V;
  expectMonotone("treiber", "Ui2", true, V);
  EXPECT_TRUE(V["sc"]) << "stripping fences cannot break SC";
  EXPECT_TRUE(V["serial"]);
}

TEST(LatticeMonotonicity, MsnT0Fenced) {
  std::map<std::string, bool> V;
  expectMonotone("msn", "T0", false, V);
  EXPECT_TRUE(V["relaxed"]) << "shipped fences must verify on relaxed";
}

TEST(LatticeMonotonicity, MsnT0Stripped) {
  std::map<std::string, bool> V;
  expectMonotone("msn", "T0", true, V);
  // The Sec. 4.2 claim: msn's fences are load-load and store-store, both
  // no-ops on TSO, so the unfenced queue still verifies there - but not
  // one lattice step weaker.
  EXPECT_TRUE(V["tso"]);
  EXPECT_FALSE(V["pso"]);
  EXPECT_FALSE(V["relaxed"]);
}

//===----------------------------------------------------------------------===//
// Matrix integration: weakest-passing summary, determinism across jobs
//===----------------------------------------------------------------------===//

TEST(MatrixWeakest, LatticeSweepReportsWeakestDeterministically) {
  std::vector<MatrixCell> Cells;
  for (const ModelParams &M : latticeModels()) {
    MatrixCell Cell;
    Cell.Impl = "msn";
    Cell.Test = "T0";
    Cell.Model = M;
    Cells.push_back(Cell);
  }
  RunOptions Opts;
  Opts.StripFences = true;
  MatrixReport R1 = MatrixRunner(1).run(Cells, catalogCellRunner(Opts));
  MatrixReport R4 = MatrixRunner(4).run(Cells, catalogCellRunner(Opts));
  EXPECT_EQ(R1.json(false), R4.json(false))
      << "timing-free lattice reports must be byte-identical across jobs";

  std::vector<WeakestSummary> S = summarizeReport(R1);
  ASSERT_EQ(1u, S.size());
  EXPECT_EQ("msn", S[0].Impl);
  EXPECT_EQ("T0", S[0].Test);
  ASSERT_FALSE(S[0].Weakest.empty());
  // tso and po:ll+ls+sl,fwd are the two incomparable minimal passing
  // points for the unfenced queue.
  EXPECT_EQ(2u, S[0].Weakest.size());
  EXPECT_NE(std::string::npos, R1.json(false).find("\"weakest_passing\""));
}

} // namespace
