//===--- AnalysisTests.cpp - critical-cycle analysis vs. SAT/enumerator ------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// Differential testing of the static critical-cycle (delay-set)
// robustness analysis:
//
//  * delay sets of the named models match their lattice order bits,
//  * eligibility markers agree between the analysis, the model registry,
//    and the public catalog,
//  * targeted litmus shapes: store buffering is not robust until fenced,
//    disjoint-location programs are robust everywhere, and a plain
//    store->load of one address is a coherence hazard exactly on the
//    forwarding-free points,
//  * "robust" is sound against the brute-force axiomatic enumerator
//    (robust => the model's observation set equals sc's) across a
//    64-seed generated-program sweep,
//  * the phase-0 pruner never changes a verdict: every catalog-impl and
//    litmus cell checks identically with the pruner on and off, and
//    discharged cells really skipped the SAT inclusion loop,
//  * the Verifier's analyze() surface is deterministic at any job count.
//
//===----------------------------------------------------------------------===//

#include "checkfence/checkfence.h"

#include "analysis/CriticalCycles.h"
#include "checker/CheckFence.h"
#include "checker/Encoder.h"
#include "explore/Generator.h"
#include "frontend/Lowering.h"
#include "harness/Catalog.h"
#include "harness/TestSpec.h"
#include "impls/Impls.h"
#include "memmodel/AxiomaticEnumerator.h"
#include "memmodel/ReadsFromOracle.h"
#include "trans/Flattener.h"
#include "trans/RangeAnalysis.h"

#include "gtest/gtest.h"

using namespace checkfence;

namespace {

/// Compile + build test threads + encode, returning the FlatProgram via
/// EncodedProblem (the same flattening every checker layer sees).
struct FlatCase {
  lsl::Program Prog;
  std::vector<std::string> Threads;
  std::unique_ptr<checker::EncodedProblem> Prob;

  bool build(const std::string &Source, const std::vector<int> &Args) {
    frontend::DiagEngine Diags;
    if (!frontend::compileC(Source, {}, Prog, Diags)) {
      ADD_FAILURE() << "compile failed:\n" << Diags.str();
      return false;
    }
    harness::TestSpec Spec;
    Spec.Name = "analysis";
    for (size_t T = 0; T < Args.size(); ++T)
      Spec.Threads.push_back({harness::OpSpec{
          "t" + std::to_string(T) + "_op", Args[T], false, false}});
    Threads = harness::buildTestThreads(Prog, Spec);
    checker::ProblemConfig Cfg;
    Prob = std::make_unique<checker::EncodedProblem>(Prog, Threads,
                                                     trans::LoopBounds{}, Cfg);
    if (!Prob->ok()) {
      ADD_FAILURE() << "encode failed: " << Prob->error();
      return false;
    }
    return true;
  }

  analysis::RobustnessResult analyze(const memmodel::ModelParams &M) {
    trans::RangeInfo R = trans::analyzeRanges(Prob->flat());
    return analysis::analyzeRobustness(Prob->flat(), R, M);
  }
};

/// The lattice points the analysis actually serves in checks: inside the
/// analysis fragment but not owned by the polynomial reads-from oracle.
std::vector<memmodel::ModelParams> servedModels() {
  std::vector<memmodel::ModelParams> Out;
  for (const memmodel::ModelParams &M : memmodel::latticeModels())
    if (analysis::analysisEligible(M) && !memmodel::readsFromEligible(M))
      Out.push_back(M);
  return Out;
}

const char *SBLitmus = R"(
extern void observe(int v);
extern void fence(char *type);
int x; int y;
void init_op(void) { x = 0; y = 0; }
void t0_op(void) { x = 1; observe(y); }
void t1_op(void) { y = 1; observe(x); }
)";

const char *SBLitmusFenced = R"(
extern void observe(int v);
extern void fence(char *type);
int x; int y;
void init_op(void) { x = 0; y = 0; }
void t0_op(void) { x = 1; fence("store-load"); observe(y); }
void t1_op(void) { y = 1; fence("store-load"); observe(x); }
)";

const char *DisjointLitmus = R"(
extern void observe(int v);
int x; int y;
void init_op(void) { x = 0; y = 0; }
void t0_op(void) { x = 1; x = 2; observe(x); }
void t1_op(void) { y = 1; y = 2; observe(y); }
)";

const char *StoreLoadSameAddr = R"(
extern void observe(int v);
int x;
void init_op(void) { x = 0; }
void t0_op(void) { x = 1; observe(x); }
)";

} // namespace

//===----------------------------------------------------------------------===//
// Delay sets and eligibility
//===----------------------------------------------------------------------===//

TEST(AnalysisDelaySets, NamedModelsMatchTheirOrderBits) {
  analysis::DelaySet SC =
      analysis::delaySetFor(memmodel::ModelParams::sc());
  EXPECT_EQ(SC.count(), 0);
  EXPECT_FALSE(SC.Forwarding);

  analysis::DelaySet TSO =
      analysis::delaySetFor(memmodel::ModelParams::tso());
  EXPECT_FALSE(TSO.LoadLoad);
  EXPECT_FALSE(TSO.LoadStore);
  EXPECT_TRUE(TSO.StoreLoad);
  EXPECT_FALSE(TSO.StoreStore);
  EXPECT_TRUE(TSO.Forwarding);

  analysis::DelaySet PSO =
      analysis::delaySetFor(memmodel::ModelParams::pso());
  EXPECT_TRUE(PSO.StoreLoad);
  EXPECT_TRUE(PSO.StoreStore);
  EXPECT_FALSE(PSO.LoadLoad);

  analysis::DelaySet Relaxed =
      analysis::delaySetFor(memmodel::ModelParams::relaxed());
  EXPECT_EQ(Relaxed.count(), 4);
  EXPECT_TRUE(Relaxed.Forwarding);
}

TEST(AnalysisDelaySets, EligibilityMarkersAgreeWithTheCatalog) {
  for (const ModelDesc &D : listModels()) {
    auto M = memmodel::modelFromName(D.Name);
    ASSERT_TRUE(M.has_value()) << D.Name;
    EXPECT_EQ(D.Analysis, analysis::analysisEligible(*M)) << D.Name;
  }
  // The one named point outside the fragment is the serial mining model.
  EXPECT_FALSE(
      analysis::analysisEligible(memmodel::ModelParams::serial()));
  EXPECT_TRUE(analysis::analysisEligible(memmodel::ModelParams::sc()));
}

//===----------------------------------------------------------------------===//
// Targeted litmus shapes
//===----------------------------------------------------------------------===//

TEST(AnalysisVerdicts, StoreBufferingIsNotRobustUntilFenced) {
  FlatCase Unfenced, Fenced;
  ASSERT_TRUE(Unfenced.build(SBLitmus, {0, 0}));
  ASSERT_TRUE(Fenced.build(SBLitmusFenced, {0, 0}));

  // sc delays nothing, so everything is robust under it.
  EXPECT_TRUE(Unfenced.analyze(memmodel::ModelParams::sc()).Robust);

  for (const memmodel::ModelParams &M : memmodel::latticeModels()) {
    if (!analysis::analysisEligible(M))
      continue;
    analysis::RobustnessResult R = Unfenced.analyze(M);
    analysis::RobustnessResult RF = Fenced.analyze(M);
    if (analysis::delaySetFor(M).StoreLoad) {
      // The classic SB cycle rides on the store->load delay.
      EXPECT_FALSE(R.Robust) << memmodel::modelName(M);
      EXPECT_GT(R.CyclePairs, 0) << memmodel::modelName(M);
      EXPECT_FALSE(R.Cycles.empty()) << memmodel::modelName(M);
      EXPECT_FALSE(R.Cuts.empty()) << memmodel::modelName(M);
      // An always-executed store-load fence in both threads cuts it.
      EXPECT_TRUE(RF.Robust) << memmodel::modelName(M);
    } else {
      EXPECT_TRUE(R.Robust) << memmodel::modelName(M);
    }
  }
}

TEST(AnalysisVerdicts, DisjointLocationsAreRobustEverywhere) {
  FlatCase C;
  ASSERT_TRUE(C.build(DisjointLitmus, {0, 0}));
  for (const memmodel::ModelParams &M : memmodel::latticeModels()) {
    if (!analysis::analysisEligible(M))
      continue;
    // No inter-thread conflict edge exists, and the same-address
    // store->store / store->load pairs are statically enforced (axiom 1)
    // or forwarding-covered - except on the forwarding-free points,
    // where the store->load of the same address is a coherence hazard.
    analysis::RobustnessResult R = C.analyze(M);
    bool Hazard = !analysis::delaySetFor(M).Forwarding &&
                  analysis::delaySetFor(M).StoreLoad;
    EXPECT_EQ(R.Robust, !Hazard) << memmodel::modelName(M);
    EXPECT_EQ(R.CyclePairs, 0) << memmodel::modelName(M);
  }
}

TEST(AnalysisVerdicts, SameAddressStoreLoadHazardNeedsForwarding) {
  FlatCase C;
  ASSERT_TRUE(C.build(StoreLoadSameAddr, {0}));
  // One thread, one address: no critical cycle can exist, so the only
  // possible weakness is the load overtaking its own store - real
  // exactly when the model delays store->load without forwarding.
  analysis::RobustnessResult Fwd =
      C.analyze(memmodel::ModelParams::relaxed());
  EXPECT_TRUE(Fwd.Robust);
  auto NoFwd = memmodel::modelFromName("po:none");
  ASSERT_TRUE(NoFwd.has_value());
  analysis::RobustnessResult Bare = C.analyze(*NoFwd);
  EXPECT_FALSE(Bare.Robust);
  EXPECT_GT(Bare.CoherenceHazards, 0);
  EXPECT_EQ(Bare.CyclePairs, 0);
}

//===----------------------------------------------------------------------===//
// Robustness is sound against the brute-force enumerator
//===----------------------------------------------------------------------===//

TEST(AnalysisDifferential, RobustImpliesScEqualObservations64Seeds) {
  explore::GeneratorLimits Limits;
  Limits.SymbolicPerMille = 0; // litmus programs only
  int Robust = 0, Compared = 0;
  for (unsigned long long Seed = 1; Seed <= 64; ++Seed) {
    explore::Generator Gen(Seed, Limits);
    explore::Scenario S = Gen.at(0);
    FlatCase C;
    ASSERT_TRUE(C.build(S.Source, S.ThreadArgs)) << "seed " << Seed;

    memmodel::AxiomaticOptions ScOpts;
    ScOpts.Model = memmodel::ModelParams::sc();
    memmodel::AxiomaticResult ScObs =
        memmodel::enumerateAxiomatic(C.Prob->flat(), ScOpts);

    for (const memmodel::ModelParams &M : memmodel::latticeModels()) {
      if (!analysis::analysisEligible(M))
        continue;
      analysis::RobustnessResult R = C.analyze(M);
      if (!R.Robust)
        continue;
      ++Robust;
      memmodel::AxiomaticOptions MOpts;
      MOpts.Model = M;
      memmodel::AxiomaticResult MObs =
          memmodel::enumerateAxiomatic(C.Prob->flat(), MOpts);
      if (!ScObs.Ok || !MObs.Ok)
        continue; // outside the enumerator fragment (or over budget)
      ++Compared;
      EXPECT_EQ(MObs.Observations, ScObs.Observations)
          << "robust program observed non-sc behaviour on "
          << memmodel::modelName(M) << " (seed " << Seed << ")\n"
          << S.Source;
    }
  }
  // The sweep must exercise the claim, not vacuously pass.
  EXPECT_GT(Robust, 0);
  EXPECT_GT(Compared, 0);
}

//===----------------------------------------------------------------------===//
// Phase-0 pruner: verdicts identical with the pruner on and off
//===----------------------------------------------------------------------===//

namespace {

/// Checks one compiled case on every served lattice point with the
/// pruner on and off; verdict, spec, and final bounds must agree, and
/// any discharge must have skipped the solve entirely.
void crossCheckPruner(const lsl::Program &Prog,
                      const std::vector<std::string> &Threads,
                      const std::string &Label, int &Discharges) {
  for (const memmodel::ModelParams &M : servedModels()) {
    checker::CheckOptions On;
    On.Model = M;
    On.AnalysisPrune = true;
    checker::CheckResult RO = checker::runCheck(Prog, Threads, On);

    checker::CheckOptions Off = On;
    Off.AnalysisPrune = false;
    checker::CheckResult RF = checker::runCheckFresh(Prog, Threads, Off);

    EXPECT_EQ(RO.Status, RF.Status)
        << Label << " on " << memmodel::modelName(M);
    EXPECT_EQ(RO.Spec, RF.Spec)
        << Label << " on " << memmodel::modelName(M);
    EXPECT_EQ(RO.FinalBounds, RF.FinalBounds)
        << Label << " on " << memmodel::modelName(M);
    EXPECT_LE(RO.Stats.AnalysisDischarges, RO.Stats.AnalysisAttempts);
    if (RO.Stats.AnalysisDischarges > 0) {
      ++Discharges;
      EXPECT_EQ(RO.Status, checker::CheckStatus::Pass) << Label;
    }
  }
}

} // namespace

TEST(AnalysisPruner, LitmusCellsAgreeWithTheSolver) {
  explore::GeneratorLimits Limits;
  Limits.SymbolicPerMille = 0;
  explore::Generator Gen(7, Limits);
  int Discharges = 0;
  for (int I = 0; I < 12; ++I) {
    explore::Scenario S = Gen.at(I);
    FlatCase C;
    ASSERT_TRUE(C.build(S.Source, S.ThreadArgs)) << "scenario " << I;
    crossCheckPruner(C.Prog, C.Threads,
                     "litmus-" + std::to_string(I), Discharges);
  }
  // Generated litmus programs are frequently robust; the pruner must
  // actually fire somewhere in this stream.
  EXPECT_GT(Discharges, 0);
}

TEST(AnalysisPruner, CatalogImplCellsAgreeWithTheSolver) {
  // Symbolic catalog checks: big programs, never robust with their
  // shipped fences on the served (very weak) points - the value here is
  // that attempting the analysis never perturbs the SAT verdict.
  frontend::DiagEngine Diags;
  lsl::Program Prog;
  ASSERT_TRUE(frontend::compileC(impls::sourceFor("ms2"), {}, Prog, Diags))
      << Diags.str();
  std::vector<std::string> Threads =
      harness::buildTestThreads(Prog, harness::testByName("T0"));
  int Discharges = 0;
  crossCheckPruner(Prog, Threads, "ms2/T0", Discharges);
}

TEST(AnalysisPruner, AllCatalogImplsAcrossTheLattice) {
  // Every catalog impl on its kind's smallest test, across all 10
  // lattice points: any cell the analysis discharges must agree with a
  // fresh pruner-off SAT run on verdict, spec, and bounds. (Cells the
  // analysis does not serve run once, pruner on, as a smoke.)
  int Discharges = 0;
  for (const impls::ImplInfo &I : impls::allImpls()) {
    std::string TestName;
    for (const TestDesc &T : listTests())
      if (T.Kind == I.Kind) {
        TestName = T.Name;
        break;
      }
    ASSERT_FALSE(TestName.empty()) << I.Name;
    frontend::DiagEngine Diags;
    lsl::Program Prog;
    ASSERT_TRUE(frontend::compileC(impls::sourceFor(I.Name), {}, Prog,
                                   Diags))
        << I.Name << ":\n" << Diags.str();
    std::vector<std::string> Threads =
        harness::buildTestThreads(Prog, harness::testByName(TestName));
    std::string Label = I.Name + "/" + TestName;

    // The standalone analysis verdict per served point, from the same
    // flattening the session's phase-0 attempt sees.
    trans::FlatProgram Flat;
    checker::CheckOptions Defaults;
    trans::Flattener F(Prog, Flat, Defaults.InitialBounds);
    for (size_t T = 0; T < Threads.size(); ++T)
      ASSERT_TRUE(F.flattenThread(Threads[T], static_cast<int>(T)))
          << Label << ": " << F.error();
    trans::RangeInfo Ranges = trans::analyzeRanges(Flat);

    for (const memmodel::ModelParams &M : memmodel::latticeModels()) {
      checker::CheckOptions On;
      On.Model = M;
      On.AnalysisPrune = true;
      checker::CheckResult RO = checker::runCheck(Prog, Threads, On);
      bool Served = analysis::analysisEligible(M) &&
                    !memmodel::readsFromEligible(M);
      if (Served && RO.Status != checker::CheckStatus::Error) {
        EXPECT_GT(RO.Stats.AnalysisAttempts, 0)
            << Label << " on " << memmodel::modelName(M);
        analysis::RobustnessResult RR =
            analysis::analyzeRobustness(Flat, Ranges, M);
        // A discharge needs robustness AND the sc reads-from oracle to
        // explain every observation (symbolic programs take the typed
        // oracle skip and fall through to SAT), so only one direction
        // is an invariant.
        if (RO.Stats.AnalysisDischarges > 0)
          EXPECT_TRUE(RR.Robust)
              << Label << " on " << memmodel::modelName(M);
        // The analysis verdict against the SAT verdict: a robustness
        // proof means the weak-model check decides exactly as sc does,
        // discharged or not.
        if (RR.Robust) {
          checker::CheckOptions Sc = On;
          Sc.Model = memmodel::ModelParams::sc();
          checker::CheckResult RS = checker::runCheck(Prog, Threads, Sc);
          EXPECT_EQ(RO.Status, RS.Status)
              << Label << " on " << memmodel::modelName(M);
          EXPECT_EQ(RO.Spec, RS.Spec)
              << Label << " on " << memmodel::modelName(M);
        }
      }
      if (RO.Stats.AnalysisDischarges == 0)
        continue; // not served, or not robust - nothing to cross-check
      ++Discharges;
      checker::CheckOptions Off = On;
      Off.AnalysisPrune = false;
      checker::CheckResult RF = checker::runCheckFresh(Prog, Threads, Off);
      EXPECT_EQ(RO.Status, RF.Status)
          << Label << " on " << memmodel::modelName(M);
      EXPECT_EQ(RO.Spec, RF.Spec)
          << Label << " on " << memmodel::modelName(M);
      EXPECT_EQ(RO.FinalBounds, RF.FinalBounds)
          << Label << " on " << memmodel::modelName(M);
    }
  }
  // Lock-free impls keep critical cycles alive on the weak served
  // points even with their shipped fences, so zero discharges here is
  // the expected outcome - the litmus sweep above supplies the nonzero
  // discharge coverage. Log it rather than assert a particular count.
  RecordProperty("catalog_discharges", Discharges);
}

//===----------------------------------------------------------------------===//
// The public analyze() surface
//===----------------------------------------------------------------------===//

TEST(AnalyzeRequest, LatticeRowsAndJobDeterminism) {
  Verifier V;
  AnalysisOutcome A = V.analyze(Request::analyze("msn", "T0"));
  ASSERT_TRUE(A.Ok) << A.Error;
  EXPECT_EQ(A.Models.size(), memmodel::latticeModels().size());
  EXPECT_GT(A.Loads, 0);
  EXPECT_GT(A.Stores, 0);

  int Eligible = 0, Ineligible = 0;
  for (const AnalysisModelRow &Row : A.Models) {
    (Row.Eligible ? Eligible : Ineligible)++;
    EXPECT_FALSE(Row.Reason.empty()) << Row.Model;
    if (!Row.Eligible)
      EXPECT_FALSE(Row.Robust) << Row.Model;
  }
  EXPECT_GT(Eligible, 0);
  EXPECT_GT(Ineligible, 0); // the serial mining point

  // msn's shipped placement keeps the tests passing but the program is
  // not whole-program robust on the weak points: the lint must say so.
  EXPECT_FALSE(A.allRobust());

  // Byte-identical JSON at any job count (the CI smoke contract).
  std::string J1 = A.json();
  VerifierConfig Cfg;
  Cfg.Jobs = 4;
  Verifier V4(Cfg);
  AnalysisOutcome A4 = V4.analyze(Request::analyze("msn", "T0"));
  ASSERT_TRUE(A4.Ok);
  EXPECT_EQ(J1, A4.json());

  // Narrowed model axis and error paths.
  AnalysisOutcome One =
      V.analyze(Request::analyze("msn", "T0").model("tso"));
  ASSERT_TRUE(One.Ok);
  ASSERT_EQ(One.Models.size(), 1u);
  EXPECT_EQ(One.Models[0].Model, "tso");
  AnalysisOutcome Bad =
      V.analyze(Request::analyze("msn", "T0").model("nonsense"));
  EXPECT_FALSE(Bad.Ok);
  AnalysisOutcome BadImpl = V.analyze(Request::analyze("nope", "T0"));
  EXPECT_FALSE(BadImpl.Ok);
}

TEST(AnalyzeRequest, SourceRequestsAnalyzeLikeCatalogOnes) {
  // A built-in source submitted as a user source must produce the same
  // analysis as the catalog name (modulo the display label).
  Verifier V;
  Request ByName = Request::analyze("treiber", "U0");
  Request BySource =
      Request::analyze()
          .source(implementationSource("treiber").substr(
              preludeSource().size()))
          .label("treiber")
          .dataType("stack")
          .notation(harness::findCatalogEntry("U0")->Notation);
  AnalysisOutcome A = V.analyze(ByName);
  AnalysisOutcome B = V.analyze(BySource);
  ASSERT_TRUE(A.Ok) << A.Error;
  ASSERT_TRUE(B.Ok) << B.Error;
  // The test label differs ("U0" vs. the notation's "custom"); every
  // analysis result must not.
  EXPECT_EQ(A.Loads, B.Loads);
  EXPECT_EQ(A.Stores, B.Stores);
  EXPECT_EQ(A.Fences, B.Fences);
  ASSERT_EQ(A.Models.size(), B.Models.size());
  for (size_t I = 0; I < A.Models.size(); ++I) {
    EXPECT_EQ(A.Models[I].Robust, B.Models[I].Robust);
    EXPECT_EQ(A.Models[I].DelayedPairs, B.Models[I].DelayedPairs);
    EXPECT_EQ(A.Models[I].CyclePairs, B.Models[I].CyclePairs);
    EXPECT_EQ(A.Models[I].Cycles, B.Models[I].Cycles);
  }
}
