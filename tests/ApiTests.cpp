//===--- ApiTests.cpp - the public facade ------------------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// Covers the include/checkfence/ facade: request building and dispatch,
// the shared versioned JSON schema (single check == one-cell matrix),
// cooperative cancellation and deadlines, and the cross-run result cache
// (hit determinism, fingerprint invalidation, bounds seeding,
// persistence).
//
// Tests may use internal headers (they are in-tree); the facade itself is
// exercised strictly through include/checkfence/checkfence.h types.
//
//===----------------------------------------------------------------------===//

#include "checkfence/checkfence.h"

#include "engine/MatrixRunner.h"
#include "harness/Catalog.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>

using namespace checkfence;

namespace {

//===----------------------------------------------------------------------===//
// Basic dispatch
//===----------------------------------------------------------------------===//

TEST(ApiCheck, PassThroughFacade) {
  Verifier V;
  Result R = V.check(Request::check("ms2", "T0").model("sc"));
  EXPECT_EQ(R.Verdict, Status::Pass);
  EXPECT_TRUE(R.passed());
  EXPECT_EQ(R.Impl, "ms2");
  EXPECT_EQ(R.Test, "T0");
  EXPECT_EQ(R.Model, "sc");
  EXPECT_GT(R.Stats.ObservationCount, 0);
  EXPECT_EQ(static_cast<int>(R.Observations.size()),
            R.Stats.ObservationCount);
  EXPECT_GT(R.Stats.SatVars, 0);
  EXPECT_FALSE(R.FromCache);
}

TEST(ApiCheck, FailureCarriesCounterexample) {
  Verifier V;
  Result R = V.check(Request::check("snark", "D0").model("sc"));
  EXPECT_EQ(R.Verdict, Status::Fail);
  EXPECT_TRUE(R.HasCounterexample);
  EXPECT_FALSE(R.CounterexampleTrace.empty());
  EXPECT_FALSE(R.CounterexampleColumns.empty());
  EXPECT_FALSE(R.CounterexampleObservation.empty());
}

TEST(ApiCheck, UnknownNamesAreErrors) {
  Verifier V;
  EXPECT_EQ(V.check(Request::check("nosuch", "T0")).Verdict,
            Status::Error);
  EXPECT_EQ(V.check(Request::check("ms2", "NoTest")).Verdict,
            Status::Error);
  EXPECT_EQ(V.check(Request::check("ms2", "T0").model("badmodel")).Verdict,
            Status::Error);
}

TEST(ApiCheck, FreshPipelineMatchesSession) {
  Verifier V;
  Request Base = Request::check("ms2", "T0").model("sc").noCache();
  Result Sess = V.check(Base);
  Result Fresh = V.check(Request(Base).freshPipeline());
  EXPECT_EQ(Sess.Verdict, Fresh.Verdict);
  EXPECT_EQ(Sess.Observations, Fresh.Observations);
}

TEST(ApiCheck, SourceAndNotationRequests) {
  Verifier V;
  // The built-in treiber stack source run as a user source.
  Result R = V.check(Request::check()
                         .source(implementationSource("treiber")
                                     .substr(preludeSource().size()))
                         .label("user-treiber")
                         .dataType("stack")
                         .notation("( u | o )")
                         .model("sc"));
  EXPECT_EQ(R.Verdict, Status::Pass) << R.Message;
  EXPECT_EQ(R.Impl, "user-treiber");
  EXPECT_EQ(R.Test, "custom");
}

//===----------------------------------------------------------------------===//
// The shared versioned JSON schema
//===----------------------------------------------------------------------===//

TEST(ApiJson, SchemaVersionPresent) {
  Verifier V;
  Result R = V.check(Request::check("ms2", "T0").model("sc"));
  std::string J = R.json(false);
  EXPECT_NE(J.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_EQ(J.find("\"seconds\""), std::string::npos);
  std::string JT = R.json(true);
  EXPECT_NE(JT.find("\"wall_seconds\""), std::string::npos);
}

TEST(ApiJson, SingleCheckMatchesOneCellMatrixReport) {
  // The facade's single-check JSON must be byte-identical to the engine
  // rendering the same verdict as a one-cell matrix report.
  Verifier V;
  Result R = V.check(Request::check("ms2", "T0").model("sc").noCache());

  harness::RunOptions Opts;
  Opts.Check.Model = memmodel::ModelParams::sc();
  engine::MatrixCell Cell;
  Cell.Impl = "ms2";
  Cell.Test = "T0";
  Cell.Model = memmodel::ModelParams::sc();
  engine::MatrixReport Rep;
  Rep.Cells.resize(1);
  Rep.Cells[0].Cell = Cell;
  Rep.Cells[0].Result = harness::catalogCellRunner(Opts)(Cell);
  EXPECT_EQ(R.json(false), Rep.json(false));
}

TEST(ApiJson, MatrixReportThroughFacadeIsDeterministic) {
  Verifier V;
  Request Req = Request::matrix()
                    .impls({"ms2"})
                    .tests({"T0", "Tpc2"})
                    .models({"sc", "tso"});
  Report R1 = V.matrix(Request(Req).jobs(1));
  Report R4 = V.matrix(Request(Req).jobs(4));
  ASSERT_TRUE(R1.ok());
  ASSERT_TRUE(R4.ok());
  EXPECT_EQ(R1.cellCount(), 4u);
  EXPECT_EQ(R1.json(false), R4.json(false));
  EXPECT_NE(R1.json(false).find("\"schema_version\": 1"),
            std::string::npos);
  EXPECT_NE(R1.json(false).find("\"weakest_passing\""),
            std::string::npos);
  EXPECT_TRUE(R1.allCompleted());
  EXPECT_EQ(R1.count(Status::Pass), 4);
}

TEST(ApiJson, SweepRunsTheFullLattice) {
  Verifier V;
  Report R =
      V.matrix(Request::sweep().impls({"treiber"}).tests({"U0"}).jobs(2));
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.cellCount(), memmodel::latticeModels().size());
  EXPECT_NE(R.json(false).find("\"weakest_passing\""),
            std::string::npos);
  std::vector<Report::Cell> Cells = R.cells();
  ASSERT_EQ(Cells.size(), R.cellCount());
  EXPECT_EQ(Cells[0].Impl, "treiber");
  EXPECT_EQ(Cells[0].Test, "U0");
  EXPECT_EQ(Cells[0].Model, "serial"); // lattice is strongest-first
}

TEST(ApiJson, MatrixErrorsAreReported) {
  Verifier V;
  Report R = V.matrix(Request::matrix().models({"nosuchmodel"}));
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.error().find("nosuchmodel"), std::string::npos);
  EXPECT_EQ(R.cellCount(), 0u);
}

//===----------------------------------------------------------------------===//
// Exit codes and status names
//===----------------------------------------------------------------------===//

TEST(ApiStatus, ExitCodeConvention) {
  EXPECT_EQ(exitCodeFor(Status::Pass), 0);
  EXPECT_EQ(exitCodeFor(Status::Fail), 1);
  EXPECT_EQ(exitCodeFor(Status::SequentialBug), 2);
  EXPECT_EQ(exitCodeFor(Status::BoundsExhausted), 3);
  EXPECT_EQ(exitCodeFor(Status::Error), 4);
  EXPECT_EQ(exitCodeFor(Status::Cancelled), 5);
}

TEST(ApiStatus, Names) {
  EXPECT_STREQ(statusName(Status::Pass), "PASS");
  EXPECT_STREQ(statusName(Status::SequentialBug), "SEQUENTIAL-BUG");
  EXPECT_STREQ(statusName(Status::Cancelled), "CANCELLED");
}

//===----------------------------------------------------------------------===//
// Cancellation, deadlines, and event streaming
//===----------------------------------------------------------------------===//

namespace {
/// Matrix runs invoke callbacks from worker threads - count atomically.
struct CountingSink : EventSink {
  std::atomic<int> Rounds{0}, Mined{0}, Cells{0}, Verdicts{0};
  void onRoundStarted(const RoundEvent &) override { ++Rounds; }
  void onObservationsMined(const ObservationsMinedEvent &) override {
    ++Mined;
  }
  void onCellFinished(const CellFinishedEvent &) override { ++Cells; }
  void onVerdict(const VerdictEvent &) override { ++Verdicts; }
};
} // namespace

TEST(ApiCancel, PreCancelledTokenStopsBeforeWork) {
  Verifier V;
  CancelToken Token;
  Token.cancel();
  Result R =
      V.check(Request::check("ms2", "T0").model("sc"), nullptr, Token);
  EXPECT_EQ(R.Verdict, Status::Cancelled);
  EXPECT_EQ(R.Message, "check cancelled");
  // Cancelled results are never cached.
  EXPECT_EQ(V.cacheStats().Entries, 0u);
}

namespace {
/// Cancels its token the first time mining reports observations - the
/// check is then mid-round, between phases.
struct CancelAfterMining : EventSink {
  CancelToken Token;
  void onObservationsMined(const ObservationsMinedEvent &) override {
    Token.cancel();
  }
};
} // namespace

TEST(ApiCancel, MidRoundCancellationReturnsCleanly) {
  Verifier V;
  CancelAfterMining Sink;
  Result R = V.check(Request::check("ms2", "Tpc2").model("sc"), &Sink,
                     Sink.Token);
  EXPECT_EQ(R.Verdict, Status::Cancelled);
  EXPECT_EQ(R.Message, "check cancelled");
  // The verifier remains usable after a cancelled run.
  Result R2 = V.check(Request::check("ms2", "T0").model("sc"));
  EXPECT_EQ(R2.Verdict, Status::Pass);
}

TEST(ApiCancel, ExpiredDeadlineCancels) {
  Verifier V;
  Result R = V.check(
      Request::check("ms2", "Tpc2").model("sc").deadline(1e-9));
  EXPECT_EQ(R.Verdict, Status::Cancelled);
  EXPECT_EQ(R.Message, "deadline exceeded");
}

TEST(ApiCancel, CancelledMatrixIsNotCompleted) {
  Verifier V;
  CancelToken Token;
  Token.cancel();
  CountingSink Sink;
  Report R = V.matrix(Request::matrix()
                          .impls({"ms2"})
                          .tests({"T0"})
                          .models({"sc", "tso"}),
                      &Sink, Token);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.count(Status::Cancelled), 2);
  EXPECT_FALSE(R.allCompleted()); // a cancelled sweep is not a verdict
  EXPECT_NE(R.json(false).find("\"cancelled\": 2"), std::string::npos);
  EXPECT_NE(R.table().find("2 cancelled"), std::string::npos);
  // Skipped cells still complete the progress stream.
  EXPECT_EQ(Sink.Cells, 2);
}

TEST(ApiCancel, GenerousDeadlineDoesNotFire) {
  Verifier V;
  Result R = V.check(
      Request::check("ms2", "T0").model("sc").deadline(3600));
  EXPECT_EQ(R.Verdict, Status::Pass);
}

//===----------------------------------------------------------------------===//
// Events
//===----------------------------------------------------------------------===//

TEST(ApiEvents, SingleCheckStreams) {
  Verifier V;
  CountingSink Sink;
  Result R = V.check(Request::check("ms2", "T0").model("sc"), &Sink);
  EXPECT_EQ(R.Verdict, Status::Pass);
  EXPECT_GE(Sink.Rounds, 1);
  EXPECT_GE(Sink.Mined, 1);
  EXPECT_EQ(Sink.Verdicts, 1);
}

TEST(ApiEvents, InvalidRequestsStillProduceAVerdictEvent) {
  Verifier V;
  CountingSink Sink;
  V.check(Request::check("no-such-impl", "T0"), &Sink);
  V.matrix(Request::matrix().models({"bogus"}), &Sink);
  V.synthesize(Request::synthesis("ms2", "NoSuchTest"), &Sink);
  EXPECT_EQ(Sink.Verdicts, 3); // one terminal event per failed request
}

TEST(ApiEvents, MatrixStreamsCellCompletions) {
  Verifier V;
  CountingSink Sink;
  Report R = V.matrix(Request::matrix()
                          .impls({"ms2"})
                          .tests({"T0"})
                          .models({"sc", "tso"})
                          .jobs(2),
                      &Sink);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(Sink.Cells, 2);
  EXPECT_EQ(Sink.Verdicts, 1); // one overall matrix verdict
}

//===----------------------------------------------------------------------===//
// The cross-run result cache
//===----------------------------------------------------------------------===//

TEST(ApiCache, SecondIdenticalRequestHitsAndIsByteIdentical) {
  Verifier V;
  Request Req = Request::check("ms2", "T0").model("sc");
  Result R1 = V.check(Req);
  ASSERT_EQ(R1.Verdict, Status::Pass);
  EXPECT_FALSE(R1.FromCache);

  Result R2 = V.check(Req);
  EXPECT_TRUE(R2.FromCache);
  EXPECT_EQ(R2.Verdict, R1.Verdict);
  EXPECT_EQ(R1.json(false), R2.json(false));

  CacheStats S = V.cacheStats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_GE(S.Misses, 1u);
  EXPECT_EQ(S.Entries, 1u);
}

TEST(ApiCache, ChangingAFenceInvalidatesTheFingerprint) {
  Verifier V;
  Result R1 = V.check(Request::check("msn", "T0").model("sc"));
  ASSERT_EQ(R1.Verdict, Status::Pass);
  // Same request with one fence stripped: a different program, so a
  // miss, not a hit.
  Result R2 =
      V.check(Request::check("msn", "T0").model("sc").stripFences());
  EXPECT_FALSE(R2.FromCache);
  EXPECT_EQ(V.cacheStats().Hits, 0u);
  EXPECT_EQ(V.cacheStats().Entries, 2u);
}

TEST(ApiCache, OptionsArePartOfTheKey) {
  Verifier V;
  V.check(Request::check("ms2", "T0").model("sc"));
  Result R = V.check(Request::check("ms2", "T0").model("tso"));
  EXPECT_FALSE(R.FromCache);
  EXPECT_EQ(V.cacheStats().Entries, 2u);
}

TEST(ApiCache, BoundsSeedAcrossModelsOfTheSameProgram) {
  Verifier V;
  // msn's retry loops make T0 grow bounds lazily, so the pass records
  // non-trivial final bounds.
  Result R1 = V.check(Request::check("msn", "T0").model("sc"));
  ASSERT_EQ(R1.Verdict, Status::Pass);
  ASSERT_FALSE(R1.FinalBounds.empty());
  // Different model, same program fingerprint: the pass above seeds the
  // initial bounds of this run (the Fig. 10 re-run workflow).
  Result R2 = V.check(Request::check("msn", "T0").model("tso"));
  EXPECT_EQ(R2.Verdict, Status::Pass);
  EXPECT_EQ(V.cacheStats().BoundsSeeded, 1u);
  // Seeding skips the lazy-unrolling rounds the first run needed.
  EXPECT_LE(R2.Stats.BoundIterations, R1.Stats.BoundIterations);
}

TEST(ApiCache, NoCacheBypasses) {
  Verifier V;
  V.check(Request::check("ms2", "T0").model("sc"));
  Result R = V.check(Request::check("ms2", "T0").model("sc").noCache());
  EXPECT_FALSE(R.FromCache);
}

TEST(ApiCache, UnparseableCacheFileIsNotClobbered) {
  std::string Path = testing::TempDir() + "cf_api_not_a_cache.txt";
  {
    std::ofstream Out(Path);
    Out << "something that is not a checkfence cache\n";
  }
  VerifierConfig Cfg;
  Cfg.CachePath = Path;
  {
    Verifier V(Cfg);
    V.check(Request::check("ms2", "T0").model("sc"));
  } // destructor must NOT overwrite the unrecognized file
  std::ifstream In(Path);
  std::string Line;
  ASSERT_TRUE(std::getline(In, Line));
  EXPECT_EQ(Line, "something that is not a checkfence cache");
  std::remove(Path.c_str());
}

TEST(ApiCache, PersistsAcrossVerifiers) {
  std::string Path = testing::TempDir() + "cf_api_cache_test.txt";
  std::remove(Path.c_str());

  VerifierConfig Cfg;
  Cfg.CachePath = Path;
  Result R1;
  {
    Verifier V(Cfg);
    R1 = V.check(Request::check("ms2", "T0").model("sc"));
    ASSERT_EQ(R1.Verdict, Status::Pass);
  } // destructor saves the cache

  Verifier V2(Cfg);
  Result R2 = V2.check(Request::check("ms2", "T0").model("sc"));
  EXPECT_TRUE(R2.FromCache);
  EXPECT_EQ(R1.json(false), R2.json(false));
  EXPECT_EQ(R1.Observations, R2.Observations);
  EXPECT_EQ(R1.FinalBounds, R2.FinalBounds);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Other request kinds
//===----------------------------------------------------------------------===//

TEST(ApiWeakest, ActiveSearchOverNamedModels) {
  Verifier V;
  WeakestOutcome O = V.weakestModels(
      Request::weakestModel("ms2", "T0").models({"sc", "tso"}));
  ASSERT_TRUE(O.Ok) << O.Error;
  ASSERT_EQ(O.Weakest.size(), 1u);
  EXPECT_EQ(O.Weakest[0], "tso");
  EXPECT_EQ(O.ModelsPassed, 2);
  // tso passing implies sc by monotonicity: at most one executed cell
  // plus one inferred.
  EXPECT_EQ(O.CellsRun + O.CellsInferred, 2);
  EXPECT_GE(O.CellsInferred, 1);
}

TEST(ApiLitmus, StoreBufferingReachability) {
  Verifier V;
  const char *Sb = R"(
extern void observe(int v);
int x; int y;
void init_op(void) { x = 0; y = 0; }
void t1_op(void) { x = 1; observe(y); }
void t2_op(void) { y = 1; observe(x); }
)";
  Request Base =
      Request::litmus(Sb).thread("t1_op").thread("t2_op").expect({0, 0});
  LitmusOutcome SC = V.observable(Request(Base).model("sc"));
  ASSERT_TRUE(SC.Ok) << SC.Error;
  EXPECT_FALSE(SC.Reachable);
  LitmusOutcome Rlx = V.observable(Request(Base).model("relaxed"));
  ASSERT_TRUE(Rlx.Ok) << Rlx.Error;
  EXPECT_TRUE(Rlx.Reachable);
}

TEST(ApiCatalog, ListingsArePopulated) {
  EXPECT_EQ(listImplementations().size(), 6u);
  EXPECT_FALSE(listTests().empty());
  EXPECT_EQ(listModels().size(), 6u);
  EXPECT_NE(implementationSource("msn").find("fence"),
            std::string::npos);
  EXPECT_TRUE(implementationSource("nosuch").empty());
  EXPECT_FALSE(preludeSource().empty());
  EXPECT_STREQ(versionString(), "0.9.0");
}

} // namespace
