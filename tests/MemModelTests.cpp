//===--- MemModelTests.cpp - litmus tests for the memory models ------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// Classic litmus shapes checked against the Sec. 2.3 axioms: an outcome is
// "reachable" iff the encoded formula is satisfiable when the observation
// vector is pinned to it. Expected verdicts follow the model definitions:
// Relaxed permits (1) load/store reordering to different addresses,
// (2) store buffering, (3) forwarding, (4) same-address load reordering,
// (5) dependence-free speculation - while keeping stores globally ordered
// (the Fig. 2 example is impossible).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lowering.h"
#include "harness/TestSpec.h"
#include "checker/Encoder.h"
#include "checker/SpecMiner.h"

#include <algorithm>

#include "gtest/gtest.h"

using namespace checkfence;
using namespace checkfence::checker;
using namespace checkfence::harness;
using lsl::Value;

namespace {

/// Builds the test program (one op per thread) and asks whether the given
/// observation is reachable under the model.
bool reachable(const std::string &Source,
               const std::vector<std::string> &Ops,
               memmodel::ModelParams Model,
               const std::vector<Value> &Outcome, bool OutcomeError = false) {
  frontend::DiagEngine Diags;
  lsl::Program Prog;
  EXPECT_TRUE(frontend::compileC(Source, {}, Prog, Diags)) << Diags.str();

  TestSpec Spec;
  Spec.Name = "litmus";
  for (const std::string &Op : Ops)
    Spec.Threads.push_back({OpSpec{Op, 0, false, false}});
  std::vector<std::string> Threads = buildTestThreads(Prog, Spec);

  ProblemConfig Cfg;
  Cfg.Model = Model;
  EncodedProblem Prob(Prog, Threads, {}, Cfg);
  EXPECT_TRUE(Prob.ok()) << Prob.error();

  Observation O;
  O.Error = OutcomeError;
  O.Values = Outcome;
  if (!Prob.requireObservation(O))
    return false;
  return Prob.solve() == sat::SolveResult::Sat;
}

constexpr auto SC = memmodel::ModelParams::sc();
constexpr auto RLX = memmodel::ModelParams::relaxed();
constexpr auto SER = memmodel::ModelParams::serial();

Value IV(int64_t N) { return Value::integer(N); }

//===----------------------------------------------------------------------===//
// Store buffering (Dekker): the classic store-load relaxation.
//===----------------------------------------------------------------------===//

const char *SbSource = R"(
extern void observe(int v);
extern void fence(char *type);
int x; int y;
void init_op(void) { x = 0; y = 0; }
void t1_op(void) { x = 1; observe(y); }
void t2_op(void) { y = 1; observe(x); }
)";

TEST(Litmus, StoreBufferingAllowedOnRelaxed) {
  EXPECT_TRUE(reachable(SbSource, {"t1_op", "t2_op"}, RLX, {IV(0), IV(0)}));
}

TEST(Litmus, StoreBufferingForbiddenOnSC) {
  EXPECT_FALSE(reachable(SbSource, {"t1_op", "t2_op"}, SC, {IV(0), IV(0)}));
}

TEST(Litmus, StoreBufferingOtherOutcomesOnSC) {
  EXPECT_TRUE(reachable(SbSource, {"t1_op", "t2_op"}, SC, {IV(1), IV(1)}));
  EXPECT_TRUE(reachable(SbSource, {"t1_op", "t2_op"}, SC, {IV(0), IV(1)}));
  EXPECT_TRUE(reachable(SbSource, {"t1_op", "t2_op"}, SC, {IV(1), IV(0)}));
}

const char *SbFencedSource = R"(
extern void observe(int v);
extern void fence(char *type);
int x; int y;
void init_op(void) { x = 0; y = 0; }
void t1_op(void) { x = 1; fence("store-load"); observe(y); }
void t2_op(void) { y = 1; fence("store-load"); observe(x); }
)";

TEST(Litmus, StoreLoadFenceRestoresSC) {
  EXPECT_FALSE(
      reachable(SbFencedSource, {"t1_op", "t2_op"}, RLX, {IV(0), IV(0)}));
}

//===----------------------------------------------------------------------===//
// Message passing: store-store / load-load (the Sec. 4.3 "incomplete
// initialization" failure shape).
//===----------------------------------------------------------------------===//

const char *MpSource = R"(
extern void observe(int v);
extern void fence(char *type);
int data; int flag;
void init_op(void) { data = 0; flag = 0; }
void producer_op(void) { data = 1; flag = 1; }
void consumer_op(void) { int f = flag; int d = data; observe(f); observe(d); }
)";

TEST(Litmus, MessagePassingReordersOnRelaxed) {
  EXPECT_TRUE(reachable(MpSource, {"producer_op", "consumer_op"}, RLX,
                        {IV(1), IV(0)}));
}

TEST(Litmus, MessagePassingForbiddenOnSC) {
  EXPECT_FALSE(reachable(MpSource, {"producer_op", "consumer_op"}, SC,
                         {IV(1), IV(0)}));
}

const char *MpFencedSource = R"(
extern void observe(int v);
extern void fence(char *type);
int data; int flag;
void init_op(void) { data = 0; flag = 0; }
void producer_op(void) { data = 1; fence("store-store"); flag = 1; }
void consumer_op(void) {
  int f = flag;
  fence("load-load");
  int d = data;
  observe(f); observe(d);
}
)";

TEST(Litmus, MessagePassingFencedForbiddenOnRelaxed) {
  EXPECT_FALSE(reachable(MpFencedSource, {"producer_op", "consumer_op"},
                         RLX, {IV(1), IV(0)}));
}

TEST(Litmus, MessagePassingFencedStillAllowsStaleFlag) {
  EXPECT_TRUE(reachable(MpFencedSource, {"producer_op", "consumer_op"}, RLX,
                        {IV(0), IV(0)}));
  EXPECT_TRUE(reachable(MpFencedSource, {"producer_op", "consumer_op"}, RLX,
                        {IV(0), IV(1)}));
}

//===----------------------------------------------------------------------===//
// Load buffering: load-store reordering.
//===----------------------------------------------------------------------===//

const char *LbSource = R"(
extern void observe(int v);
extern void fence(char *type);
int x; int y;
void init_op(void) { x = 0; y = 0; }
void t1_op(void) { int r = x; y = 1; observe(r); }
void t2_op(void) { int r = y; x = 1; observe(r); }
)";

TEST(Litmus, LoadBufferingAllowedOnRelaxed) {
  EXPECT_TRUE(reachable(LbSource, {"t1_op", "t2_op"}, RLX, {IV(1), IV(1)}));
}

TEST(Litmus, LoadBufferingForbiddenOnSC) {
  EXPECT_FALSE(reachable(LbSource, {"t1_op", "t2_op"}, SC, {IV(1), IV(1)}));
}

const char *LbFencedSource = R"(
extern void observe(int v);
extern void fence(char *type);
int x; int y;
void init_op(void) { x = 0; y = 0; }
void t1_op(void) { int r = x; fence("load-store"); y = 1; observe(r); }
void t2_op(void) { int r = y; fence("load-store"); x = 1; observe(r); }
)";

TEST(Litmus, LoadStoreFenceForbidsLoadBuffering) {
  EXPECT_FALSE(
      reachable(LbFencedSource, {"t1_op", "t2_op"}, RLX, {IV(1), IV(1)}));
}

//===----------------------------------------------------------------------===//
// IRIW with load-load fences: the paper's Fig. 2. Relaxed orders all
// stores globally, so the two readers cannot disagree on the store order.
//===----------------------------------------------------------------------===//

const char *IriwSource = R"(
extern void observe(int v);
extern void fence(char *type);
int x; int y;
void init_op(void) { x = 0; y = 0; }
void w1_op(void) { x = 1; }
void w2_op(void) { y = 1; }
void r1_op(void) { int a = x; fence("load-load"); int b = y;
                   observe(a); observe(b); }
void r2_op(void) { int c = y; fence("load-load"); int d = x;
                   observe(c); observe(d); }
)";

TEST(Litmus, Fig2IriwImpossibleOnRelaxed) {
  // (a,b,c,d) = (1,0,1,0) would mean reader 1 sees x=1 before y=1 and
  // reader 2 sees y=1 before x=1: impossible with globally ordered stores.
  EXPECT_FALSE(reachable(IriwSource, {"w1_op", "w2_op", "r1_op", "r2_op"},
                         RLX, {IV(1), IV(0), IV(1), IV(0)}));
}

TEST(Litmus, IriwConsistentOutcomesReachable) {
  EXPECT_TRUE(reachable(IriwSource, {"w1_op", "w2_op", "r1_op", "r2_op"},
                        RLX, {IV(1), IV(0), IV(0), IV(1)}));
  EXPECT_TRUE(reachable(IriwSource, {"w1_op", "w2_op", "r1_op", "r2_op"},
                        RLX, {IV(1), IV(1), IV(1), IV(1)}));
}

//===----------------------------------------------------------------------===//
// Same-address load-load reordering (relaxation 4).
//===----------------------------------------------------------------------===//

const char *SameAddrSource = R"(
extern void observe(int v);
extern void fence(char *type);
int x;
void init_op(void) { x = 0; }
void writer_op(void) { x = 1; }
void reader_op(void) { int a = x; int b = x; observe(a); observe(b); }
)";

TEST(Litmus, SameAddressLoadsReorderOnRelaxed) {
  EXPECT_TRUE(reachable(SameAddrSource, {"writer_op", "reader_op"}, RLX,
                        {IV(1), IV(0)}));
}

TEST(Litmus, SameAddressLoadsOrderedOnSC) {
  EXPECT_FALSE(reachable(SameAddrSource, {"writer_op", "reader_op"}, SC,
                         {IV(1), IV(0)}));
}

const char *SameAddrFencedSource = R"(
extern void observe(int v);
extern void fence(char *type);
int x;
void init_op(void) { x = 0; }
void writer_op(void) { x = 1; }
void reader_op(void) { int a = x; fence("load-load"); int b = x;
                       observe(a); observe(b); }
)";

TEST(Litmus, LoadLoadFenceOrdersSameAddressLoads) {
  EXPECT_FALSE(reachable(SameAddrFencedSource, {"writer_op", "reader_op"},
                         RLX, {IV(1), IV(0)}));
}

//===----------------------------------------------------------------------===//
// Store forwarding (relaxation 3): a thread always sees its own writes.
//===----------------------------------------------------------------------===//

const char *FwdSource = R"(
extern void observe(int v);
int x;
void init_op(void) { x = 0; }
void t1_op(void) { x = 1; observe(x); }
void t2_op(void) { observe(x); }
)";

TEST(Litmus, OwnStoreAlwaysVisible) {
  // Thread 1's read must return 1 even if its store is still buffered.
  EXPECT_FALSE(
      reachable(FwdSource, {"t1_op", "t2_op"}, RLX, {IV(0), IV(0)}));
  EXPECT_TRUE(reachable(FwdSource, {"t1_op", "t2_op"}, RLX, {IV(1), IV(0)}));
}

TEST(Litmus, BufferedStoreMayHideFromOthers) {
  // Thread 2 may still read 0 after thread 1 observed its own store.
  EXPECT_TRUE(reachable(FwdSource, {"t1_op", "t2_op"}, RLX, {IV(1), IV(0)}));
}

//===----------------------------------------------------------------------===//
// Same-address store-store order (Relaxed axiom 1).
//===----------------------------------------------------------------------===//

const char *CoherenceSource = R"(
extern void observe(int v);
extern void fence(char *type);
int x;
void init_op(void) { x = 0; }
void writer_op(void) { x = 1; x = 2; }
void reader_op(void) { int a = x; fence("load-load"); int b = x;
                       observe(a); observe(b); }
)";

TEST(Litmus, SameAddressStoresStayOrdered) {
  // a=2 then b=1 would require the stores to reorder; axiom 1 forbids it.
  EXPECT_FALSE(reachable(CoherenceSource, {"writer_op", "reader_op"}, RLX,
                         {IV(2), IV(1)}));
  EXPECT_TRUE(reachable(CoherenceSource, {"writer_op", "reader_op"}, RLX,
                        {IV(1), IV(2)}));
}

//===----------------------------------------------------------------------===//
// Dependent-load reordering (relaxation 5, the Sec. 4.3 Alpha behavior).
//===----------------------------------------------------------------------===//

const char *DepSource = R"(
extern void observe(int v);
extern void fence(char *type);
typedef struct n { int f; } n_t;
extern n_t *new_node();
n_t *p;
int published;
void init_op(void) { published = 0; p = 0; }
void pub_op(void) {
  n_t *n = new_node();
  n->f = 7;
#ifdef PUBFENCE
  fence("store-store");
#endif
  p = n;
}
void read_op(void) {
  n_t *r = p;
  int seen = (r != 0);
  int v = 9;
#ifdef READFENCE
  fence("load-load");
#endif
  if (seen) v = r->f;
  observe(seen); observe(v);
}
)";

TEST(Litmus, DependentLoadSeesUninitializedOnRelaxed) {
  // Even though v = r->f depends on r, the field load may be satisfied
  // before the publication store lands: v stays undefined.
  EXPECT_TRUE(reachable(DepSource, {"pub_op", "read_op"}, RLX,
                        {IV(1), Value::undef()}));
}

TEST(Litmus, DependentLoadFineOnSC) {
  EXPECT_FALSE(reachable(DepSource, {"pub_op", "read_op"}, SC,
                         {IV(1), Value::undef()}));
  EXPECT_TRUE(reachable(DepSource, {"pub_op", "read_op"}, SC,
                        {IV(1), IV(7)}));
}

//===----------------------------------------------------------------------===//
// TSO and PSO: the intermediate SPARC models (Sec. 4.2 notes that the
// paper's load-load / store-store fences are "automatic" on TSO). TSO
// relaxes only store-load order; PSO additionally relaxes store-store.
//===----------------------------------------------------------------------===//

constexpr auto TSO = memmodel::ModelParams::tso();
constexpr auto PSO = memmodel::ModelParams::pso();

TEST(LitmusTsoPso, StoreBufferingAllowedOnTsoAndPso) {
  // The one relaxation TSO has: both loads may overtake the buffered
  // stores.
  EXPECT_TRUE(reachable(SbSource, {"t1_op", "t2_op"}, TSO, {IV(0), IV(0)}));
  EXPECT_TRUE(reachable(SbSource, {"t1_op", "t2_op"}, PSO, {IV(0), IV(0)}));
}

TEST(LitmusTsoPso, StoreLoadFenceForbidsStoreBuffering) {
  EXPECT_FALSE(
      reachable(SbFencedSource, {"t1_op", "t2_op"}, TSO, {IV(0), IV(0)}));
  EXPECT_FALSE(
      reachable(SbFencedSource, {"t1_op", "t2_op"}, PSO, {IV(0), IV(0)}));
}

TEST(LitmusTsoPso, MessagePassingSafeOnTso) {
  // Store-store and load-load order are automatic on TSO: the unfenced
  // producer/consumer pair cannot see the flag without the data.
  EXPECT_FALSE(reachable(MpSource, {"producer_op", "consumer_op"}, TSO,
                         {IV(1), IV(0)}));
}

TEST(LitmusTsoPso, MessagePassingBreaksOnPso) {
  // PSO lets the flag store overtake the data store.
  EXPECT_TRUE(reachable(MpSource, {"producer_op", "consumer_op"}, PSO,
                        {IV(1), IV(0)}));
}

TEST(LitmusTsoPso, StoreStoreFenceRestoresMessagePassingOnPso) {
  // On PSO only the producer-side store-store fence is needed; the
  // consumer's load-load order is automatic. MpFencedSource has both.
  EXPECT_FALSE(reachable(MpFencedSource, {"producer_op", "consumer_op"},
                         PSO, {IV(1), IV(0)}));
}

TEST(LitmusTsoPso, LoadBufferingForbidden) {
  // Load-store order is preserved by both models: no load buffering.
  EXPECT_FALSE(reachable(LbSource, {"t1_op", "t2_op"}, TSO, {IV(1), IV(1)}));
  EXPECT_FALSE(reachable(LbSource, {"t1_op", "t2_op"}, PSO, {IV(1), IV(1)}));
}

TEST(LitmusTsoPso, SameAddressLoadsStayOrdered) {
  // Load-load order is preserved by both models (relaxation 4 is absent).
  EXPECT_FALSE(reachable(SameAddrSource, {"writer_op", "reader_op"}, TSO,
                         {IV(1), IV(0)}));
  EXPECT_FALSE(reachable(SameAddrSource, {"writer_op", "reader_op"}, PSO,
                         {IV(1), IV(0)}));
}

TEST(LitmusTsoPso, IriwImpossible) {
  // Stores are globally ordered on every model in this family (Fig. 2).
  EXPECT_FALSE(reachable(IriwSource, {"w1_op", "w2_op", "r1_op", "r2_op"},
                         TSO, {IV(1), IV(0), IV(1), IV(0)}));
  EXPECT_FALSE(reachable(IriwSource, {"w1_op", "w2_op", "r1_op", "r2_op"},
                         PSO, {IV(1), IV(0), IV(1), IV(0)}));
}

TEST(LitmusTsoPso, StoreForwardingStillApplies) {
  // Both models forward buffered stores to local loads (SB-with-own-read:
  // reading the own store does not force it to be globally visible).
  EXPECT_FALSE(reachable(FwdSource, {"t1_op", "t2_op"}, TSO,
                         {IV(0), IV(0)}));
  EXPECT_TRUE(reachable(FwdSource, {"t1_op", "t2_op"}, TSO,
                        {IV(1), IV(0)}));
}

TEST(LitmusTsoPso, DependentLoadSafeOnTsoBreaksNowhereElse) {
  // The Alpha-style dependent-load reordering needs load-load relaxation,
  // which neither TSO nor PSO has: the published field is always seen
  // initialized.
  EXPECT_FALSE(reachable(DepSource, {"pub_op", "read_op"}, TSO,
                         {IV(1), Value::undef()}));
}

TEST(LitmusTsoPso, PublicationBreaksOnPsoWithoutFence) {
  // ...but PSO reorders the field-initialization store with the pointer
  // publication store (the Sec. 4.3 "incomplete initialization" class).
  EXPECT_TRUE(reachable(DepSource, {"pub_op", "read_op"}, PSO,
                        {IV(1), Value::undef()}));
}

TEST(LitmusTsoPso, PublicationFenceRestoresPso) {
  frontend::DiagEngine Diags;
  // With the PUBFENCE store-store fence the uninitialized read is gone.
  lsl::Program Prog;
  ASSERT_TRUE(frontend::compileC(DepSource, {"PUBFENCE"}, Prog, Diags));
  TestSpec Spec;
  Spec.Name = "pubfence";
  Spec.Threads.push_back({OpSpec{"pub_op", 0, false, false}});
  Spec.Threads.push_back({OpSpec{"read_op", 0, false, false}});
  std::vector<std::string> Threads = buildTestThreads(Prog, Spec);
  ProblemConfig Cfg;
  Cfg.Model = PSO;
  EncodedProblem Prob(Prog, Threads, {}, Cfg);
  ASSERT_TRUE(Prob.ok()) << Prob.error();
  Observation O;
  O.Values = {IV(1), Value::undef()};
  Prob.requireObservation(O);
  EXPECT_NE(Prob.solve(), sat::SolveResult::Sat);
}

//===----------------------------------------------------------------------===//
// Seriality is stronger than SC: operations do not interleave.
//===----------------------------------------------------------------------===//

const char *SerialSource = R"(
extern void observe(int v);
int x;
void init_op(void) { x = 0; }
void incr_op(void) { int t = x; x = t + 1; observe(t); }
)";

TEST(Litmus, LostUpdatePossibleOnSC) {
  // Two interleaved unsynchronized increments can both read 0.
  EXPECT_TRUE(
      reachable(SerialSource, {"incr_op", "incr_op"}, SC, {IV(0), IV(0)}));
}

TEST(Litmus, LostUpdateImpossibleOnSerial) {
  // Atomic operations serialize: the second increment must read 1.
  EXPECT_FALSE(
      reachable(SerialSource, {"incr_op", "incr_op"}, SER, {IV(0), IV(0)}));
  EXPECT_TRUE(
      reachable(SerialSource, {"incr_op", "incr_op"}, SER, {IV(0), IV(1)}));
  EXPECT_TRUE(
      reachable(SerialSource, {"incr_op", "incr_op"}, SER, {IV(1), IV(0)}));
}

//===----------------------------------------------------------------------===//
// Rank-based order encoding agrees with the pairwise encoding (E12).
//===----------------------------------------------------------------------===//

class OrderModeAgreement
    : public ::testing::TestWithParam<memmodel::ModelParams> {};

TEST_P(OrderModeAgreement, SameVerdicts) {
  memmodel::ModelParams Model = GetParam();
  struct Case {
    const char *Src;
    std::vector<std::string> Ops;
    std::vector<Value> Obs;
  };
  std::vector<Case> Cases = {
      {SbSource, {"t1_op", "t2_op"}, {IV(0), IV(0)}},
      {MpSource, {"producer_op", "consumer_op"}, {IV(1), IV(0)}},
      {LbSource, {"t1_op", "t2_op"}, {IV(1), IV(1)}},
      {SameAddrSource, {"writer_op", "reader_op"}, {IV(1), IV(0)}},
  };
  for (const Case &C : Cases) {
    frontend::DiagEngine Diags;
    lsl::Program Prog;
    ASSERT_TRUE(frontend::compileC(C.Src, {}, Prog, Diags));
    TestSpec Spec;
    Spec.Name = "agree";
    for (const std::string &Op : C.Ops)
      Spec.Threads.push_back({OpSpec{Op, 0, false, false}});
    std::vector<std::string> Threads = buildTestThreads(Prog, Spec);

    bool Results[2];
    for (int Mode = 0; Mode < 2; ++Mode) {
      ProblemConfig Cfg;
      Cfg.Model = Model;
      Cfg.Order = Mode == 0 ? encode::OrderMode::Pairwise
                            : encode::OrderMode::Rank;
      EncodedProblem Prob(Prog, Threads, {}, Cfg);
      ASSERT_TRUE(Prob.ok()) << Prob.error();
      Observation O;
      O.Values = C.Obs;
      Prob.requireObservation(O);
      Results[Mode] = Prob.solve() == sat::SolveResult::Sat;
    }
    EXPECT_EQ(Results[0], Results[1]);
  }
}

INSTANTIATE_TEST_SUITE_P(Models, OrderModeAgreement,
                         ::testing::Values(SC, TSO, PSO, RLX, SER));

//===----------------------------------------------------------------------===//
// Model strength hierarchy (Sec. 2.3.3): Serial is stronger than SC,
// which is stronger than TSO, than PSO, than Relaxed. Stronger models
// allow fewer executions, so their observation sets must be nested.
//===----------------------------------------------------------------------===//

struct HierarchyCase {
  const char *Name;
  const char *Src;
  std::vector<std::string> Ops;
};

class ModelHierarchy : public ::testing::TestWithParam<HierarchyCase> {};

TEST_P(ModelHierarchy, ObservationSetsAreNested) {
  const HierarchyCase &C = GetParam();
  frontend::DiagEngine Diags;
  lsl::Program Prog;
  ASSERT_TRUE(frontend::compileC(C.Src, {}, Prog, Diags)) << Diags.str();
  TestSpec Spec;
  Spec.Name = C.Name;
  for (const std::string &Op : C.Ops)
    Spec.Threads.push_back({OpSpec{Op, 0, false, false}});
  std::vector<std::string> Threads = buildTestThreads(Prog, Spec);

  const std::vector<memmodel::ModelParams> Chain = {
      SER, SC, TSO, PSO, RLX};
  std::vector<ObservationSet> Sets;
  for (memmodel::ModelParams K : Chain) {
    ProblemConfig Cfg;
    Cfg.Model = K;
    EncodedProblem Prob(Prog, Threads, {}, Cfg);
    ASSERT_TRUE(Prob.ok()) << Prob.error();
    MiningOutcome M = mineSpecification(Prob);
    ASSERT_TRUE(M.Ok || M.SequentialBug) << M.Error;
    Sets.push_back(M.Spec);
  }
  for (size_t I = 0; I + 1 < Sets.size(); ++I) {
    EXPECT_TRUE(std::includes(Sets[I + 1].begin(), Sets[I + 1].end(),
                              Sets[I].begin(), Sets[I].end()))
        << "observations of " << modelName(Chain[I])
        << " not contained in " << modelName(Chain[I + 1]) << " for "
        << C.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Litmus, ModelHierarchy,
    ::testing::Values(
        HierarchyCase{"sb", SbSource, {"t1_op", "t2_op"}},
        HierarchyCase{"mp", MpSource, {"producer_op", "consumer_op"}},
        HierarchyCase{"lb", LbSource, {"t1_op", "t2_op"}},
        HierarchyCase{"sameaddr", SameAddrSource,
                      {"writer_op", "reader_op"}},
        HierarchyCase{"fwd", FwdSource, {"t1_op", "t2_op"}},
        HierarchyCase{"coherence", CoherenceSource,
                      {"writer_op", "reader_op"}},
        HierarchyCase{"iriw", IriwSource,
                      {"w1_op", "w2_op", "r1_op", "r2_op"}},
        HierarchyCase{"incr", SerialSource, {"incr_op", "incr_op"}}),
    [](const ::testing::TestParamInfo<HierarchyCase> &I) {
      return std::string(I.param.Name);
    });

} // namespace
