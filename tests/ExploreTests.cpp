//===--- ExploreTests.cpp - the scenario-exploration subsystem ---------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// Covers the explore pipeline end to end: deterministic generation, the
// printer round-trip that persistence relies on, clean differential
// runs over the default model axis, corpus dedup across runs, report
// byte-identity across job counts, and - via the injection seam - the
// shrinker and the persisted-repro re-check loop.
//
//===----------------------------------------------------------------------===//

#include "explore/Corpus.h"
#include "explore/Differential.h"
#include "explore/Explore.h"
#include "explore/Generator.h"
#include "explore/Shrinker.h"
#include "frontend/Lowering.h"
#include "harness/Catalog.h"
#include "impls/Impls.h"
#include "lsl/Printer.h"
#include "support/Fingerprint.h"

#include "checkfence/checkfence.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <fstream>
#include <functional>
#include <unistd.h>

using namespace checkfence;
using namespace checkfence::explore;

namespace {

/// A scratch directory unique to this test binary run.
std::string scratchDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "cf-explore-" + Name +
                    std::to_string(::getpid());
  return Dir;
}

std::vector<memmodel::ModelParams> defaultAxis() {
  return {memmodel::ModelParams::sc(), memmodel::ModelParams::tso(),
          memmodel::ModelParams::relaxed()};
}

/// The test injection seam: "diverges" whenever the compiled program
/// stores the constant 2 somewhere. Stable under every shrinker
/// reduction except the 2 -> 1 value shrink (which the shrinker then
/// correctly rejects).
std::string injectOnStoreOfTwo(const lsl::Program &Prog) {
  for (const auto &[Name, P] : Prog.procs()) {
    if (Name == "init_op" || Name.rfind("__", 0) == 0)
      continue;
    std::function<bool(const std::vector<lsl::Stmt *> &)> Scan =
        [&](const std::vector<lsl::Stmt *> &Body) {
          for (const lsl::Stmt *S : Body) {
            if (S->K == lsl::StmtKind::Const && S->ConstVal.isInt() &&
                S->ConstVal.intValue() == 2)
              return true;
            if (S->isBlockLike() && Scan(S->Body))
              return true;
          }
          return false;
        };
    if (Scan(P->Body))
      return "injected: stores the constant 2";
  }
  return std::string();
}

//===----------------------------------------------------------------------===//
// Generator determinism
//===----------------------------------------------------------------------===//

TEST(ExploreGenerator, ScenarioIsAPureFunctionOfSeedAndIndex) {
  Generator A(42, GeneratorLimits());
  Generator B(42, GeneratorLimits());
  for (int I = 0; I < 50; ++I) {
    Scenario SA = A.at(I);
    Scenario SB = B.at(I);
    EXPECT_EQ(SA.K, SB.K) << I;
    EXPECT_EQ(SA.Source, SB.Source) << I;
    EXPECT_EQ(SA.Impl, SB.Impl) << I;
    EXPECT_EQ(SA.Notation, SB.Notation) << I;
  }
}

TEST(ExploreGenerator, DifferentSeedsDiffer) {
  Generator A(1, GeneratorLimits());
  Generator B(2, GeneratorLimits());
  int Different = 0;
  for (int I = 0; I < 20; ++I) {
    Scenario SA = A.at(I);
    Scenario SB = B.at(I);
    Different += SA.Source != SB.Source || SA.Notation != SB.Notation;
  }
  EXPECT_GT(Different, 10);
}

TEST(ExploreGenerator, LitmusProgramsCompile) {
  Generator Gen(7, GeneratorLimits());
  int Litmus = 0;
  for (int I = 0; I < 40; ++I) {
    Scenario S = Gen.at(I);
    if (S.K != Scenario::Kind::Litmus)
      continue;
    ++Litmus;
    frontend::DiagEngine Diags;
    lsl::Program Prog;
    EXPECT_TRUE(frontend::compileC(S.Source, {}, Prog, Diags))
        << S.Source << "\n" << Diags.str();
  }
  EXPECT_GT(Litmus, 10);
}

TEST(ExploreGenerator, SymbolicNotationsParse) {
  Generator Gen(7, GeneratorLimits());
  int Symbolic = 0;
  for (int I = 0; I < 60; ++I) {
    Scenario S = Gen.at(I);
    if (S.K != Scenario::Kind::Symbolic)
      continue;
    ++Symbolic;
    const impls::ImplInfo *Info = impls::findImpl(S.Impl);
    ASSERT_NE(Info, nullptr) << S.Impl;
    harness::TestSpec Spec;
    std::string Err;
    EXPECT_TRUE(harness::parseTestNotation(
        S.Notation, harness::alphabetFor(Info->Kind), Spec, Err))
        << S.Notation << ": " << Err;
  }
  EXPECT_GT(Symbolic, 5);
}

//===----------------------------------------------------------------------===//
// Printer round-trip: the persistence contract.
//===----------------------------------------------------------------------===//

TEST(ExplorePrinter, GeneratedProgramsRoundTripByteForByte) {
  Generator Gen(11, GeneratorLimits());
  int Checked = 0;
  for (int I = 0; I < 60 && Checked < 25; ++I) {
    Scenario S = Gen.at(I);
    if (S.K != Scenario::Kind::Litmus)
      continue;
    frontend::DiagEngine Diags;
    lsl::Program Prog;
    ASSERT_TRUE(frontend::compileC(S.Source, {}, Prog, Diags))
        << Diags.str();

    std::string CSource, Error;
    ASSERT_TRUE(lsl::printCSource(Prog, CSource, Error))
        << Error << "\n" << S.Source;

    frontend::DiagEngine Diags2;
    lsl::Program Prog2;
    ASSERT_TRUE(frontend::compileC(CSource, {}, Prog2, Diags2))
        << CSource << "\n" << Diags2.str();
    EXPECT_EQ(lsl::printProgram(Prog), lsl::printProgram(Prog2))
        << "printer output re-lowered differently:\n" << CSource;
    // Identical lowered text means identical corpus fingerprint.
    EXPECT_EQ(support::loweredProgramFingerprint(Prog, {}),
              support::loweredProgramFingerprint(Prog2, {}));
    ++Checked;
  }
  EXPECT_GE(Checked, 25);
}

TEST(ExplorePrinter, RejectsProgramsOutsideTheFragment) {
  // Retry loops (while + break) are outside the explore fragment: the
  // printer must refuse, never emit wrong source.
  frontend::DiagEngine Diags;
  lsl::Program Prog;
  ASSERT_TRUE(frontend::compileC("extern void observe(int v);\n"
                                 "int x;\n"
                                 "void init_op(void) { x = 0; }\n"
                                 "void t0_op(void) {\n"
                                 "  while (1) { if (x) break; }\n"
                                 "  observe(x);\n"
                                 "}\n",
                                 {}, Prog, Diags))
      << Diags.str();
  std::string CSource, Error;
  EXPECT_FALSE(lsl::printCSource(Prog, CSource, Error));
  EXPECT_FALSE(Error.empty());
}

//===----------------------------------------------------------------------===//
// Differential runner: clean runs on the default axis.
//===----------------------------------------------------------------------===//

TEST(ExploreDifferential, GeneratedScenariosAgreeWithTheOracles) {
  Verifier V;
  DiffOptions Opts;
  Opts.Models = defaultAxis();
  DifferentialRunner Runner(V, Opts);
  Generator Gen(3, GeneratorLimits());
  int Ran = 0;
  for (int I = 0; I < 12; ++I) {
    Scenario S = Gen.at(I);
    ScenarioOutcome O = Runner.run(S);
    for (const Divergence &D : O.Divergences)
      ADD_FAILURE() << S.label() << " diverged [" << D.Kind << " @ "
                    << D.Model << "]: " << D.Detail << "\n"
                    << S.Source << S.Notation;
    Ran += O.Ran;
  }
  EXPECT_GE(Ran, 10);
}

//===----------------------------------------------------------------------===//
// End-to-end explore runs
//===----------------------------------------------------------------------===//

TEST(ExploreRun, CleanRunAndJobCountByteIdentity) {
  ExploreOptions Opts;
  Opts.Seed = 5;
  Opts.Budget = 12;
  Opts.Jobs = 1;

  Verifier V1;
  ExploreReport R1 = runExplore(V1, Opts);
  ASSERT_TRUE(R1.Ok) << R1.Error;
  EXPECT_TRUE(R1.Divergences.empty());
  EXPECT_EQ(R1.Run, 12);

  Opts.Jobs = 4;
  Verifier V4;
  ExploreReport R4 = runExplore(V4, Opts);
  ASSERT_TRUE(R4.Ok) << R4.Error;
  EXPECT_EQ(R1.json(false), R4.json(false));
  // Timing-full output differs (jobs field), timing-free must not.
  EXPECT_NE(R1.json(true), std::string());
}

TEST(ExploreRun, PublicFacadeRunsExplore) {
  Verifier V;
  ExploreOutcome E =
      V.explore(Request::explore().seed(9).budget(6).jobs(2).models(
          {"sc", "relaxed"}));
  ASSERT_TRUE(E.ok()) << E.error();
  EXPECT_TRUE(E.clean());
  EXPECT_EQ(E.run(), 6);
  EXPECT_EQ(E.seed(), 9u);
  std::string Json = E.json(false);
  EXPECT_NE(Json.find("\"kind\": \"explore\""), std::string::npos);
  EXPECT_NE(Json.find("\"schema_version\": 1"), std::string::npos);
}

TEST(ExploreRun, InvalidRequestsAreErrors) {
  Verifier V;
  EXPECT_FALSE(V.explore(Request::explore().budget(0)).ok());
  EXPECT_FALSE(
      V.explore(Request::explore().models({"not-a-model"})).ok());
}

TEST(ExploreRun, CorpusDedupsAcrossRuns) {
  std::string Dir = scratchDir("corpus");
  ExploreOptions Opts;
  Opts.Seed = 21;
  Opts.Budget = 5;
  Opts.CorpusDir = Dir;

  Verifier V;
  ExploreReport First = runExplore(V, Opts);
  ASSERT_TRUE(First.Ok) << First.Error;
  ASSERT_EQ(static_cast<int>(First.Scenarios.size()), 5);

  ExploreReport Second = runExplore(V, Opts);
  ASSERT_TRUE(Second.Ok) << Second.Error;
  // Every scenario of the first run is remembered: the second spends
  // its budget on later indices.
  EXPECT_GE(Second.Deduplicated, 5);
  for (const ScenarioRecord &A : First.Scenarios)
    for (const ScenarioRecord &B : Second.Scenarios)
      EXPECT_NE(A.Label, B.Label);
}

//===----------------------------------------------------------------------===//
// Injected divergences: shrinking and the persisted-repro loop.
//===----------------------------------------------------------------------===//

TEST(ExploreShrink, InjectedDivergenceShrinksToMinimalPersistedRepro) {
  std::string Dir = scratchDir("shrink");
  ExploreOptions Opts;
  Opts.Seed = 1;
  Opts.Budget = 12;
  Opts.CorpusDir = Dir;
  Opts.Diff.Inject = injectOnStoreOfTwo;

  Verifier V;
  ExploreReport Rep = runExplore(V, Opts);
  ASSERT_TRUE(Rep.Ok) << Rep.Error;
  ASSERT_FALSE(Rep.Divergences.empty())
      << "seed 1 generates no store of 2 in 12 scenarios?";

  const DivergenceRecord &D = Rep.Divergences.front();
  EXPECT_EQ(D.Kind, "injected");
  EXPECT_TRUE(D.Shrunk);
  EXPECT_LE(D.Threads, 2) << D.Source;
  EXPECT_LE(D.Ops, 3) << D.Source;
  ASSERT_FALSE(D.ReproPath.empty());
  ASSERT_FALSE(D.Source.empty());

  // The persisted file reproduces the divergence when re-run from disk.
  Repro R;
  std::string Error;
  ASSERT_TRUE(loadRepro(D.ReproPath, R, Error)) << Error;
  EXPECT_EQ(R.Div.Kind, "injected");
  EXPECT_EQ(R.Source, D.Source);

  DiffOptions Diff;
  for (const std::string &Name : R.Models) {
    auto M = memmodel::modelFromName(Name);
    ASSERT_TRUE(M.has_value()) << Name;
    Diff.Models.push_back(*M);
  }
  Diff.Inject = injectOnStoreOfTwo;
  ScenarioOutcome Again =
      DifferentialRunner(V, Diff).run(R.toScenario());
  ASSERT_FALSE(Again.Divergences.empty())
      << "persisted repro did not reproduce:\n" << R.Source;
  EXPECT_EQ(Again.Divergences.front().Kind, "injected");

  // Without the injection the shrunk program is clean: the repro
  // captures the (synthetic) bug, not a real checker defect.
  DiffOptions NoInject = Diff;
  NoInject.Inject = nullptr;
  EXPECT_TRUE(DifferentialRunner(V, NoInject)
                  .run(R.toScenario())
                  .Divergences.empty());
}

TEST(ExploreShrink, ShrinkerMinimizesDirectly) {
  // Hand-built scenario: three threads, plenty of droppable noise
  // around one store of 2.
  LitmusProgram P;
  P.NumVars = 3;
  {
    LitmusThread T;
    T.Stmts.push_back({LitmusStmt::Kind::StoreConst, 0, 0, 2,
                       lsl::FenceKind::LoadLoad});
    T.Stmts.push_back({LitmusStmt::Kind::Fence, 0, 0, 0,
                       lsl::FenceKind::StoreStore});
    T.Stmts.push_back({LitmusStmt::Kind::LoadObserve, 1, 0, 0,
                       lsl::FenceKind::LoadLoad});
    P.Threads.push_back(T);
  }
  {
    LitmusThread T;
    T.Stmts.push_back({LitmusStmt::Kind::StoreArg, 1, 0, 0,
                       lsl::FenceKind::LoadLoad});
    T.Stmts.push_back({LitmusStmt::Kind::AtomicIncr, 2, 0, 0,
                       lsl::FenceKind::LoadLoad});
    P.Threads.push_back(T);
  }
  {
    LitmusThread T;
    T.Stmts.push_back({LitmusStmt::Kind::LoadObserve, 2, 0, 0,
                       lsl::FenceKind::LoadLoad});
    P.Threads.push_back(T);
  }
  Scenario S;
  S.K = Scenario::Kind::Litmus;
  S.Litmus = P;
  S.HasStructure = true;
  S.Source = P.render();
  for (const LitmusThread &T : P.Threads)
    S.ThreadArgs.push_back(T.usesArg() ? 1 : 0);

  Verifier V;
  DiffOptions Opts;
  Opts.Models = defaultAxis();
  Opts.Inject = injectOnStoreOfTwo;
  ShrinkResult R = shrinkScenario(S, V, Opts);
  EXPECT_GT(R.Steps, 0);
  EXPECT_EQ(R.Min.threadCount(), 1);
  EXPECT_EQ(R.Min.opCount(), 1);
  EXPECT_EQ(R.Repro.Kind, "injected");
  // The sole surviving statement is the store of 2.
  EXPECT_NE(R.Min.Source.find("= 2;"), std::string::npos)
      << R.Min.Source;
}

//===----------------------------------------------------------------------===//
// Repro file format
//===----------------------------------------------------------------------===//

TEST(ExploreCorpus, ReproRoundTripsThroughTheFileFormat) {
  Repro R;
  R.Label = "litmus-3";
  R.Div = {"sat-vs-axiomatic", "tso", "sat: (0) | oracle: (0) (1)"};
  R.Models = {"sc", "tso"};
  R.Threads = 2;
  R.Ops = 3;
  R.Source = "extern void observe(int v);\nint x;\n"
             "void init_op(void) {\n  x = 0;\n}\n"
             "void t0_op(void) {\n  x = 1;\n}\n";

  Repro Back;
  std::string Error;
  ASSERT_TRUE(parseRepro(renderRepro(R), Back, Error)) << Error;
  EXPECT_EQ(Back.Label, R.Label);
  EXPECT_EQ(Back.Div.Kind, R.Div.Kind);
  EXPECT_EQ(Back.Div.Model, R.Div.Model);
  EXPECT_EQ(Back.Div.Detail, R.Div.Detail);
  EXPECT_EQ(Back.Models, R.Models);
  EXPECT_EQ(Back.Threads, 2);
  EXPECT_EQ(Back.Ops, 3);
  EXPECT_EQ(Back.Source, R.Source);

  Repro Sym;
  Sym.Label = "sym-1";
  Sym.Div = {"lattice-monotonicity", "", "relaxed=FAIL sc=PASS"};
  Sym.Models = {"sc", "relaxed"};
  Sym.Impl = "msn";
  Sym.Notation = "e ( e d | d e' )";
  ASSERT_TRUE(parseRepro(renderRepro(Sym), Back, Error)) << Error;
  EXPECT_EQ(Back.Impl, "msn");
  EXPECT_EQ(Back.Notation, Sym.Notation);
  EXPECT_TRUE(Back.Source.empty());

  EXPECT_FALSE(parseRepro("garbage", Back, Error));
  EXPECT_FALSE(parseRepro("checkfence-explore-repro 1\nend\n", Back,
                          Error));
}

} // namespace
