//===--- CheckerTests.cpp - end-to-end pipeline tests ----------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lowering.h"
#include "harness/Catalog.h"
#include "impls/Impls.h"
#include "memmodel/ReferenceExecutor.h"

#include "gtest/gtest.h"

using namespace checkfence;
using namespace checkfence::checker;
using namespace checkfence::harness;

namespace {

RunOptions relaxedOpts() {
  RunOptions O;
  O.Check.Model = memmodel::ModelParams::relaxed();
  return O;
}

RunOptions scOpts() {
  RunOptions O;
  O.Check.Model = memmodel::ModelParams::sc();
  return O;
}

//===----------------------------------------------------------------------===//
// Reference implementations against themselves (sanity).
//===----------------------------------------------------------------------===//

TEST(RefImpls, QueueSpecOnT0) {
  // For T0 = (e | d): X in {EMPTY, A} -> spec has exactly the serial
  // observations: A in {0,1}, X in {2, A}.
  CheckResult R = runTest(impls::referenceFor("queue"), testByName("T0"),
                          scOpts());
  ASSERT_EQ(R.Status, CheckStatus::Pass) << R.Message;
  // Observations: (A, X): (0,2), (0,0), (1,2), (1,1).
  EXPECT_EQ(R.Spec.size(), 4u);
  for (const Observation &O : R.Spec) {
    ASSERT_EQ(O.Values.size(), 2u);
    ASSERT_TRUE(O.Values[0].isInt());
    ASSERT_TRUE(O.Values[1].isInt());
    int64_t A = O.Values[0].intValue();
    int64_t X = O.Values[1].intValue();
    EXPECT_TRUE(X == 2 || X == A);
  }
}

TEST(RefImpls, SetSpecOnSac) {
  // Sac = (a | c): add(v1) in thread 1, contains(v2) in thread 2.
  CheckResult R = runTest(impls::referenceFor("set"), testByName("Sac"),
                          scOpts());
  ASSERT_EQ(R.Status, CheckStatus::Pass) << R.Message;
  for (const Observation &O : R.Spec) {
    ASSERT_EQ(O.Values.size(), 4u); // a-arg, a-ret, c-arg, c-ret
    int64_t AddArg = O.Values[0].intValue();
    int64_t AddRet = O.Values[1].intValue();
    int64_t CArg = O.Values[2].intValue();
    int64_t CRet = O.Values[3].intValue();
    EXPECT_EQ(AddRet, 1); // fresh set: add always succeeds
    if (CArg != AddArg)
      EXPECT_EQ(CRet, 0); // other key never present
  }
}

//===----------------------------------------------------------------------===//
// Cross-validation: SAT-based serial mining vs explicit-state enumeration.
//===----------------------------------------------------------------------===//

void crossValidateSpec(const std::string &Source, const std::string &Test) {
  frontend::DiagEngine Diags;
  lsl::Program Prog;
  ASSERT_TRUE(frontend::compileC(Source, {}, Prog, Diags))
      << Diags.str();
  TestSpec Spec = testByName(Test);
  std::vector<std::string> Threads = buildTestThreads(Prog, Spec);

  // SAT-based mining.
  ProblemConfig Cfg;
  Cfg.Model = memmodel::ModelParams::serial();
  EncodedProblem Prob(Prog, Threads, {}, Cfg);
  ASSERT_TRUE(Prob.ok()) << Prob.error();
  MiningOutcome Mined = mineSpecification(Prob);
  ASSERT_TRUE(Mined.Ok) << Mined.Error;
  ASSERT_FALSE(Mined.SequentialBug);

  // Explicit-state enumeration of the same flat program.
  memmodel::RefOptions RO;
  RO.InvocationGranularity = true;
  auto RefSet = memmodel::enumerateExecutions(Prob.flat(), RO);

  std::set<Observation> RefObs;
  for (const memmodel::RefObservation &O : RefSet) {
    Observation C;
    C.Error = O.Error;
    C.Values = O.Values;
    RefObs.insert(C);
  }
  EXPECT_EQ(Mined.Spec, RefObs)
      << "mined " << Mined.Spec.size() << " vs enumerated "
      << RefObs.size();
}

TEST(CrossValidation, RefQueueT0) {
  crossValidateSpec(impls::referenceFor("queue"), "T0");
}

TEST(CrossValidation, RefQueueTi2) {
  crossValidateSpec(impls::referenceFor("queue"), "Ti2");
}

TEST(CrossValidation, RefSetSacr) {
  crossValidateSpec(impls::referenceFor("set"), "Sacr");
}

TEST(CrossValidation, RefDequeD0) {
  crossValidateSpec(impls::referenceFor("deque"), "D0");
}

TEST(CrossValidation, MsnQueueT0) {
  crossValidateSpec(impls::sourceFor("msn"), "T0");
}

//===----------------------------------------------------------------------===//
// The headline results (Sec. 4) on the smallest tests.
//===----------------------------------------------------------------------===//

TEST(EndToEnd, MsnPassesT0OnRelaxedWithFences) {
  CheckResult R =
      runTest(impls::sourceFor("msn"), testByName("T0"), relaxedOpts());
  EXPECT_EQ(R.Status, CheckStatus::Pass) << R.Message;
}

TEST(EndToEnd, MsnFailsT0OnRelaxedWithoutFences) {
  RunOptions O = relaxedOpts();
  O.StripFences = true;
  CheckResult R = runTest(impls::sourceFor("msn"), testByName("T0"), O);
  EXPECT_EQ(R.Status, CheckStatus::Fail) << R.Message;
  ASSERT_TRUE(R.Counterexample.has_value());
}

TEST(EndToEnd, MsnPassesT0OnSCWithoutFences) {
  // The unfenced algorithm is correct under sequential consistency.
  RunOptions O = scOpts();
  O.StripFences = true;
  CheckResult R = runTest(impls::sourceFor("msn"), testByName("T0"), O);
  EXPECT_EQ(R.Status, CheckStatus::Pass) << R.Message;
}

TEST(EndToEnd, LazylistBugFoundOnSac) {
  RunOptions O = scOpts();
  O.Defines = {"LAZYLIST_INIT_BUG"};
  CheckResult R =
      runTest(impls::sourceFor("lazylist"), testByName("Sac"), O);
  EXPECT_EQ(R.Status, CheckStatus::SequentialBug) << R.Message;
  ASSERT_TRUE(R.Counterexample.has_value());
}

TEST(EndToEnd, LazylistPassesSacOnRelaxedWithFences) {
  CheckResult R = runTest(impls::sourceFor("lazylist"), testByName("Sac"),
                          relaxedOpts());
  EXPECT_EQ(R.Status, CheckStatus::Pass) << R.Message;
}

} // namespace
