//===--- SatProofTests.cpp - DRAT-style proof logging and checking ----------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// CheckFence's verdicts hinge on unsatisfiability (specification mining
// terminates on Unsat; a PASS of the inclusion check *is* an Unsat
// answer), so the solver's refutations are logged as clausal proofs and
// validated by an independent reverse-unit-propagation checker. These
// tests cover crafted UNSAT families, random sweeps, the incremental
// blocking-clause pattern the miner uses, assumption conflicts, rejection
// of tampered proofs, and a full CheckFence inclusion check.
//
//===----------------------------------------------------------------------===//

#include "sat/Proof.h"

#include "checker/Encoder.h"
#include "checker/SpecMiner.h"
#include "frontend/Lowering.h"
#include "harness/Catalog.h"
#include "impls/Impls.h"

#include "gtest/gtest.h"

#include <random>

using namespace checkfence;
using namespace checkfence::sat;

namespace {

Lit mk(Var V, bool Neg = false) { return Lit::make(V, Neg); }

//===----------------------------------------------------------------------===//
// Crafted families.
//===----------------------------------------------------------------------===//

/// Pigeonhole principle PHP(Holes+1, Holes): unsatisfiable.
void addPigeonhole(Solver &S, int Holes) {
  int Pigeons = Holes + 1;
  std::vector<std::vector<Var>> P(Pigeons, std::vector<Var>(Holes));
  for (int I = 0; I < Pigeons; ++I)
    for (int J = 0; J < Holes; ++J)
      P[I][J] = S.newVar();
  for (int I = 0; I < Pigeons; ++I) {
    std::vector<Lit> C;
    for (int J = 0; J < Holes; ++J)
      C.push_back(mk(P[I][J]));
    S.addClause(C);
  }
  for (int J = 0; J < Holes; ++J)
    for (int I1 = 0; I1 < Pigeons; ++I1)
      for (int I2 = I1 + 1; I2 < Pigeons; ++I2)
        S.addClause(mk(P[I1][J], true), mk(P[I2][J], true));
}

class PigeonholeProof : public ::testing::TestWithParam<int> {};

TEST_P(PigeonholeProof, RefutationValidates) {
  Solver S;
  S.enableProofLog();
  addPigeonhole(S, GetParam());
  ASSERT_EQ(S.solve(), SolveResult::Unsat);
  ASSERT_NE(S.proofLog(), nullptr);
  EXPECT_TRUE(S.proofLog()->hasEmptyClause());
  RupChecker::Outcome O =
      RupChecker::check(*S.proofLog(), /*RequireEmptyClause=*/true);
  EXPECT_TRUE(O.Ok) << O.Error;
  EXPECT_GT(O.CheckedDerivations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PigeonholeProof, ::testing::Values(3, 4, 5));

//===----------------------------------------------------------------------===//
// Random sweeps.
//===----------------------------------------------------------------------===//

std::vector<std::vector<Lit>> randomCnf(unsigned Seed, int Vars,
                                        int ClauseCount) {
  std::mt19937 Rng(Seed);
  std::vector<std::vector<Lit>> Cnf;
  for (int C = 0; C < ClauseCount; ++C) {
    std::vector<Lit> Clause;
    for (int K = 0; K < 3; ++K)
      Clause.push_back(
          mk(static_cast<Var>(Rng() % Vars), (Rng() & 1) != 0));
    Cnf.push_back(Clause);
  }
  return Cnf;
}

class RandomProof : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomProof, UnsatRunsValidateSatRunsModel) {
  // Near the 3-SAT phase transition (ratio ~5) small instances split
  // between Sat and Unsat; both outcomes are checked.
  auto Cnf = randomCnf(GetParam(), 20, 100);
  Solver S;
  S.enableProofLog();
  for (Var V = 0; V < 20; ++V)
    S.newVar();
  bool Consistent = true;
  for (const auto &C : Cnf)
    Consistent = S.addClause(C) && Consistent;

  SolveResult R = Consistent ? S.solve() : SolveResult::Unsat;
  if (R == SolveResult::Unsat) {
    RupChecker::Outcome O = RupChecker::check(*S.proofLog(), true);
    EXPECT_TRUE(O.Ok) << O.Error;
    return;
  }
  ASSERT_EQ(R, SolveResult::Sat);
  for (const auto &C : Cnf) {
    bool Satisfied = false;
    for (Lit L : C)
      Satisfied = Satisfied || S.modelTrue(L);
    EXPECT_TRUE(Satisfied);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomProof, ::testing::Range(0u, 32u));

TEST(SatProof, IncrementalBlockingLoopValidates) {
  // The specification-mining pattern: enumerate models, blocking each,
  // until Unsat; the proof must account for all blocking clauses.
  Solver S;
  S.enableProofLog();
  const int N = 6;
  for (Var V = 0; V < N; ++V)
    S.newVar();
  S.addClause(mk(0), mk(1)); // at least something is true
  int Models = 0;
  while (S.solve() == SolveResult::Sat) {
    ++Models;
    ASSERT_LE(Models, 1 << N);
    std::vector<Lit> Block;
    for (Var V = 0; V < N; ++V)
      Block.push_back(mk(V, S.modelTrue(mk(V))));
    if (!S.addClause(Block))
      break;
  }
  EXPECT_EQ(Models, (1 << N) - (1 << (N - 2))); // both of v0,v1 false excluded
  RupChecker::Outcome O = RupChecker::check(*S.proofLog(), true);
  EXPECT_TRUE(O.Ok) << O.Error;
}

TEST(SatProof, AssumptionConflictIsLogged) {
  // a -> b, b -> c; assuming a and ~c is inconsistent. The derived clause
  // over the negated assumptions validates without an empty clause, and
  // the formula itself stays satisfiable.
  Solver S;
  S.enableProofLog();
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addClause(mk(A, true), mk(B));
  S.addClause(mk(B, true), mk(C));
  EXPECT_EQ(S.solve({mk(A), mk(C, true)}), SolveResult::Unsat);
  EXPECT_FALSE(S.conflictAssumptions().empty());
  RupChecker::Outcome O =
      RupChecker::check(*S.proofLog(), /*RequireEmptyClause=*/false);
  EXPECT_TRUE(O.Ok) << O.Error;
  EXPECT_EQ(S.solve(), SolveResult::Sat);
}

//===----------------------------------------------------------------------===//
// The checker rejects wrong proofs.
//===----------------------------------------------------------------------===//

TEST(SatProof, TamperedDerivationIsRejected) {
  ProofLog Log;
  Var A = 0, B = 1;
  Log.addInput({mk(A), mk(B)});
  // {a} does not follow from {a, b} by unit propagation.
  Log.addDerived({mk(A)});
  RupChecker::Outcome O = RupChecker::check(Log, false);
  EXPECT_FALSE(O.Ok);
  EXPECT_NE(O.Error.find("not RUP"), std::string::npos) << O.Error;
}

TEST(SatProof, MissingEmptyClauseIsRejected) {
  ProofLog Log;
  Log.addInput({mk(0)});
  RupChecker::Outcome O = RupChecker::check(Log, true);
  EXPECT_FALSE(O.Ok);
  EXPECT_NE(O.Error.find("empty clause"), std::string::npos);
}

TEST(SatProof, ValidHandProofAccepted) {
  // Resolution chain: (a|b), (~a|b), (a|~b), (~a|~b) |- b, ~b, empty.
  ProofLog Log;
  Var A = 0, B = 1;
  Log.addInput({mk(A), mk(B)});
  Log.addInput({mk(A, true), mk(B)});
  Log.addInput({mk(A), mk(B, true)});
  Log.addInput({mk(A, true), mk(B, true)});
  Log.addDerived({mk(B)});
  Log.addDerived({});
  RupChecker::Outcome O = RupChecker::check(Log, true);
  EXPECT_TRUE(O.Ok) << O.Error;
}

TEST(SatProof, DratTextExport) {
  Solver S;
  S.enableProofLog();
  addPigeonhole(S, 3);
  ASSERT_EQ(S.solve(), SolveResult::Unsat);
  std::string Text = S.proofLog()->toDratText();
  EXPECT_FALSE(Text.empty());
  // The refutation ends with the empty clause: a lone "0" line.
  EXPECT_NE(Text.find("\n0\n"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// End to end: a PASS verdict is an Unsat answer with a certificate.
//===----------------------------------------------------------------------===//

TEST(SatProof, InclusionCheckPassIsCertified) {
  using namespace checkfence::checker;
  using namespace checkfence::harness;

  frontend::DiagEngine Diags;
  lsl::Program Prog;
  ASSERT_TRUE(frontend::compileC(impls::sourceFor("treiber"), {}, Prog,
                                 Diags))
      << Diags.str();
  TestSpec Test = testByName("U0");
  std::vector<std::string> Threads = buildTestThreads(Prog, Test);

  // Mine the specification under Serial...
  ProblemConfig SerialCfg;
  SerialCfg.Model = memmodel::ModelParams::serial();
  EncodedProblem SerialProb(Prog, Threads, {}, SerialCfg);
  ASSERT_TRUE(SerialProb.ok()) << SerialProb.error();
  MiningOutcome Spec = mineSpecification(SerialProb);
  ASSERT_TRUE(Spec.Ok) << Spec.Error;

  // ...then run the inclusion check on Relaxed with proof logging.
  ProblemConfig Cfg;
  Cfg.Model = memmodel::ModelParams::relaxed();
  Cfg.ProofLog = true;
  EncodedProblem Prob(Prog, Threads, {}, Cfg);
  ASSERT_TRUE(Prob.ok()) << Prob.error();
  for (const Observation &O : Spec.Spec)
    Prob.addMismatch(O);
  ASSERT_EQ(Prob.solve(), SolveResult::Unsat)
      << "fenced treiber must pass U0 on Relaxed";

  ASSERT_NE(Prob.proofLog(), nullptr);
  RupChecker::Outcome O = RupChecker::check(*Prob.proofLog(), true);
  EXPECT_TRUE(O.Ok) << O.Error;
  EXPECT_GT(O.CheckedDerivations, 0u);
}

} // namespace
