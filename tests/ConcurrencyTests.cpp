//===--- ConcurrencyTests.cpp - one Verifier, many threads --------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// The Verifier documents itself as safe to share across threads; the
// checkfenced server leans on that by pointing every connection of a
// shard at one instance. These tests hammer that contract - mixed
// request kinds racing on one Verifier, overlapping program
// fingerprints contending on the cache and session pool, cancellation
// of one request mid-flight among unrelated ones, a cache shared
// between Verifiers, and concurrent persistence to one file - and are
// run under ThreadSanitizer in CI (the `sanitizers` job), where any
// data race is fatal rather than flaky.
//
//===----------------------------------------------------------------------===//

#include "checkfence/checkfence.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace checkfence;

namespace {

/// Runs \p Fn on \p N threads and joins them.
template <typename Fn>
void onThreads(int N, Fn F) {
  std::vector<std::thread> Threads;
  Threads.reserve(N);
  for (int I = 0; I < N; ++I)
    Threads.emplace_back([I, &F] { F(I); });
  for (std::thread &T : Threads)
    T.join();
}

TEST(Concurrency, MixedKindsShareOneVerifier) {
  Verifier V;
  std::atomic<int> Mismatches{0};
  // Four workload flavors, two threads each. The check threads run the
  // same (program, model) pairs deliberately: identical fingerprints
  // race on the result cache and the warm-session pool.
  onThreads(8, [&](int I) {
    for (int Round = 0; Round < 3; ++Round) {
      switch (I % 4) {
      case 0: {
        Result R = V.check(Request::check("ms2", "T0").model("sc"));
        if (R.Verdict != Status::Pass)
          ++Mismatches;
        break;
      }
      case 1: {
        Result R = V.check(Request::check("snark", "D0").model("sc"));
        if (R.Verdict != Status::Fail || !R.HasCounterexample)
          ++Mismatches;
        break;
      }
      case 2: {
        Report R = V.matrix(Request::matrix()
                                .impls({"ms2"})
                                .tests({"T0"})
                                .models({"sc", "tso"}));
        if (!R.ok() || !R.allCompleted() ||
            R.count(Status::Pass) != 2)
          ++Mismatches;
        break;
      }
      case 3: {
        Request Req = Request::check("ms2", "T0");
        Req.RequestKind = Request::Kind::Analyze;
        AnalysisOutcome A = V.analyze(Req);
        if (!A.Ok)
          ++Mismatches;
        break;
      }
      }
    }
  });
  EXPECT_EQ(Mismatches, 0);
  // The overlapping check fingerprints must have produced cache reuse.
  CacheStats Stats = V.cacheStats();
  EXPECT_GE(Stats.Hits, 1u);
}

TEST(Concurrency, HitsAreByteIdenticalUnderContention) {
  Verifier V;
  Request Req = Request::check("ms2", "T0").model("tso");
  const std::string Expected = V.check(Req).json(false);
  std::atomic<int> Mismatches{0};
  onThreads(6, [&](int) {
    for (int Round = 0; Round < 4; ++Round)
      if (V.check(Req).json(false) != Expected)
        ++Mismatches;
  });
  EXPECT_EQ(Mismatches, 0);
}

TEST(Concurrency, CancellingOneRequestLeavesOthersAlone) {
  Verifier V;
  CancelToken Token;
  std::atomic<int> Mismatches{0};
  std::atomic<bool> SlowDone{false};
  std::thread Slow([&] {
    // Cancelled mid-flight (or finished first on a fast machine - both
    // are legal; what matters is that the verdict is one of the two and
    // nobody else is disturbed).
    Result R =
        V.check(Request::check("ms2", "Tpc2").model("sc"), nullptr, Token);
    if (R.Verdict != Status::Cancelled && R.Verdict != Status::Pass)
      ++Mismatches;
    SlowDone = true;
  });
  onThreads(4, [&](int) {
    for (int Round = 0; Round < 3; ++Round) {
      Result R = V.check(Request::check("ms2", "T0").model("sc"));
      if (R.Verdict != Status::Pass)
        ++Mismatches;
    }
  });
  Token.cancel();
  Slow.join();
  EXPECT_TRUE(SlowDone);
  EXPECT_EQ(Mismatches, 0);
  // The verifier stays healthy after a concurrent cancellation.
  EXPECT_EQ(V.check(Request::check("ms2", "T0").model("sc")).Verdict,
            Status::Pass);
}

TEST(Concurrency, SharedCacheAcrossVerifiers) {
  SharedResultCache Shared = SharedResultCache::create();
  ASSERT_TRUE(Shared.valid());
  VerifierConfig Cfg;
  Cfg.SharedCache = Shared;
  Verifier A(Cfg), B(Cfg);
  Request Req = Request::check("ms2", "T0").model("sc");

  std::atomic<int> Mismatches{0};
  onThreads(4, [&](int I) {
    Verifier &V = (I % 2) ? A : B;
    for (int Round = 0; Round < 3; ++Round)
      if (V.check(Req).Verdict != Status::Pass)
        ++Mismatches;
  });
  EXPECT_EQ(Mismatches, 0);
  // 12 identical checks over one shared cache: up to one miss per
  // thread can race the first insert, everything after hits, visible
  // from both verifiers and the handle alike.
  EXPECT_EQ(Shared.stats().Entries, 1u);
  EXPECT_GE(Shared.stats().Hits, 8u);
  EXPECT_TRUE(A.check(Req).FromCache);
  EXPECT_TRUE(B.check(Req).FromCache);
}

TEST(Concurrency, ConcurrentPersistenceToOneFile) {
  std::string Path = testing::TempDir() + "cf_concurrent_cache.txt";
  std::remove(Path.c_str());

  // Each thread owns a private-cache Verifier with a distinct entry and
  // repeatedly merge-saves into one file while others do the same (the
  // locked read-merge-rename path the daemon and CLI share).
  const char *Models[] = {"sc", "tso", "pso", "rmo"};
  std::atomic<int> Failures{0};
  onThreads(4, [&](int I) {
    Verifier V;
    if (V.check(Request::check("ms2", "T0").model(Models[I])).Verdict !=
        Status::Pass)
      ++Failures;
    for (int Round = 0; Round < 3; ++Round)
      if (!V.saveCache(Path))
        ++Failures;
  });
  EXPECT_EQ(Failures, 0);

  // The merged file holds every thread's entry and stays loadable.
  SharedResultCache Merged = SharedResultCache::create();
  ASSERT_TRUE(Merged.load(Path));
  EXPECT_EQ(Merged.stats().Entries, 4u);

  // Concurrent loads into live verifiers race load-merge against checks.
  onThreads(4, [&](int I) {
    VerifierConfig Cfg;
    Cfg.SharedCache = SharedResultCache::create();
    Cfg.SharedCache.load(Path);
    Verifier V(Cfg);
    Result R = V.check(Request::check("ms2", "T0").model(Models[I]));
    if (R.Verdict != Status::Pass || !R.FromCache)
      ++Failures;
  });
  EXPECT_EQ(Failures, 0);
  std::remove(Path.c_str());
}

} // namespace
