//===--- EncodeTests.cpp - CNF builder / bitvector / order tests -----------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "encode/BitVec.h"
#include "encode/OrderEncoding.h"

#include "gtest/gtest.h"

#include <random>

using namespace checkfence;
using namespace checkfence::encode;
using namespace checkfence::sat;

namespace {

//===----------------------------------------------------------------------===//
// CnfBuilder gates
//===----------------------------------------------------------------------===//

struct GateFixture {
  Solver S;
  CnfBuilder B{S};
  Lit A = B.fresh(), C = B.fresh();

  /// Checks the truth table of Out against F over inputs (A, C).
  void checkBinary(Lit Out, bool (*F)(bool, bool)) {
    for (int I = 0; I < 4; ++I) {
      bool AV = I & 1, CV = I & 2;
      std::vector<Lit> Assumps{A ^ !AV, C ^ !CV};
      ASSERT_EQ(S.solve(Assumps), SolveResult::Sat);
      EXPECT_EQ(S.modelValue(Out) == LBool::True, F(AV, CV))
          << "inputs " << AV << " " << CV;
    }
  }
};

TEST(CnfBuilder, AndGate) {
  GateFixture G;
  G.checkBinary(G.B.andLit(G.A, G.C), [](bool X, bool Y) { return X && Y; });
}

TEST(CnfBuilder, OrGate) {
  GateFixture G;
  G.checkBinary(G.B.orLit(G.A, G.C), [](bool X, bool Y) { return X || Y; });
}

TEST(CnfBuilder, XorGate) {
  GateFixture G;
  G.checkBinary(G.B.xorLit(G.A, G.C), [](bool X, bool Y) { return X != Y; });
}

TEST(CnfBuilder, ConstantFolding) {
  Solver S;
  CnfBuilder B(S);
  Lit A = B.fresh();
  EXPECT_EQ(B.andLit(A, B.trueLit()), A);
  EXPECT_TRUE(B.isFalse(B.andLit(A, B.falseLit())));
  EXPECT_EQ(B.orLit(A, B.falseLit()), A);
  EXPECT_TRUE(B.isTrue(B.orLit(A, B.trueLit())));
  EXPECT_EQ(B.xorLit(A, B.falseLit()), A);
  EXPECT_EQ(B.xorLit(A, B.trueLit()), ~A);
  EXPECT_TRUE(B.isFalse(B.andLit(A, ~A)));
}

TEST(CnfBuilder, StructuralHashing) {
  Solver S;
  CnfBuilder B(S);
  Lit A = B.fresh(), C = B.fresh();
  EXPECT_EQ(B.andLit(A, C), B.andLit(C, A));
  EXPECT_EQ(B.xorLit(A, C), B.xorLit(C, A));
  EXPECT_EQ(B.xorLit(~A, C), ~B.xorLit(A, C));
}

TEST(CnfBuilder, IteGate) {
  Solver S;
  CnfBuilder B(S);
  Lit C = B.fresh(), X = B.fresh(), Y = B.fresh();
  Lit Out = B.iteLit(C, X, Y);
  for (int I = 0; I < 8; ++I) {
    bool CV = I & 1, XV = I & 2, YV = I & 4;
    ASSERT_EQ(S.solve({C ^ !CV, X ^ !XV, Y ^ !YV}), SolveResult::Sat);
    EXPECT_EQ(S.modelValue(Out) == LBool::True, CV ? XV : YV);
  }
}

//===----------------------------------------------------------------------===//
// Bitvector circuits: property tests against native arithmetic.
//===----------------------------------------------------------------------===//

class BitVecProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitVecProperty, ArithmeticMatchesNative) {
  std::mt19937 Rng(GetParam());
  for (int Round = 0; Round < 12; ++Round) {
    Solver S;
    CnfBuilder B(S);
    int WidthA = 1 + static_cast<int>(Rng() % 7);
    int WidthB = 1 + static_cast<int>(Rng() % 7);
    uint64_t AV = Rng() & ((1u << WidthA) - 1);
    uint64_t BV = Rng() & ((1u << WidthB) - 1);
    BitVec A = BitVec::constant(B, AV, WidthA);
    BitVec Bv = BitVec::constant(B, BV, WidthB);

    int OutW = 9;
    uint64_t Mask = (1u << OutW) - 1;
    BitVec Sum = bvAdd(B, A, Bv, OutW);
    BitVec Diff = bvSub(B, A, Bv, OutW);
    BitVec Prod = bvMul(B, A, Bv, OutW);
    Lit Eq = bvEq(B, A, Bv);
    Lit Ult = bvUlt(B, A, Bv);

    ASSERT_EQ(S.solve(), SolveResult::Sat);
    EXPECT_EQ(bvModelValue(S, B, Sum), (AV + BV) & Mask);
    EXPECT_EQ(bvModelValue(S, B, Diff), (AV - BV) & Mask);
    EXPECT_EQ(bvModelValue(S, B, Prod), (AV * BV) & Mask);
    EXPECT_EQ(S.modelValue(Eq) == LBool::True, AV == BV);
    EXPECT_EQ(S.modelValue(Ult) == LBool::True, AV < BV);
  }
}

TEST_P(BitVecProperty, SymbolicAdditionInverts) {
  // For symbolic x: (x + c) - c == x.
  std::mt19937 Rng(GetParam());
  Solver S;
  CnfBuilder B(S);
  int W = 6;
  BitVec X = BitVec::fresh(B, W);
  uint64_t C = Rng() & ((1u << W) - 1);
  BitVec Sum = bvAdd(B, X, BitVec::constant(B, C, W), W);
  BitVec Back = bvSub(B, Sum, BitVec::constant(B, C, W), W);
  // Assert inequality; must be unsatisfiable.
  B.addClause(~bvEq(B, X, Back));
  EXPECT_EQ(S.solve(), SolveResult::Unsat);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitVecProperty,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u));

TEST(BitVec, MuxSelects) {
  Solver S;
  CnfBuilder B(S);
  Lit C = B.fresh();
  BitVec X = BitVec::constant(B, 5, 4), Y = BitVec::constant(B, 9, 4);
  BitVec M = bvMux(B, C, X, Y);
  ASSERT_EQ(S.solve({C}), SolveResult::Sat);
  EXPECT_EQ(bvModelValue(S, B, M), 5u);
  ASSERT_EQ(S.solve({~C}), SolveResult::Sat);
  EXPECT_EQ(bvModelValue(S, B, M), 9u);
}

TEST(BitVec, EqConstOutOfRange) {
  Solver S;
  CnfBuilder B(S);
  BitVec X = BitVec::fresh(B, 2);
  EXPECT_TRUE(B.isFalse(bvEqConst(B, X, 9))); // 9 needs 4 bits
}

//===----------------------------------------------------------------------===//
// Order relation: totality, antisymmetry, transitivity as SAT properties.
//===----------------------------------------------------------------------===//

std::vector<AccessInfo> makeAccesses(int PerThread, int Threads) {
  std::vector<AccessInfo> Out;
  for (int T = 0; T < Threads; ++T)
    for (int I = 0; I < PerThread; ++I) {
      AccessInfo A;
      A.Thread = T;
      A.IndexInThread = I;
      A.Group = -1;
      Out.push_back(A);
    }
  return Out;
}

class OrderProperty
    : public ::testing::TestWithParam<std::pair<OrderMode, int>> {};

TEST_P(OrderProperty, IsATotalOrder) {
  auto [Mode, N] = GetParam();
  Solver S;
  CnfBuilder B(S);
  MemoryOrder M(B, makeAccesses(N, 1), Mode, /*SerialOps=*/false, {});
  ASSERT_EQ(S.solve(), SolveResult::Sat);

  auto Before = [&](int I, int J) {
    Lit L = M.before(I, J);
    if (B.isTrue(L))
      return true;
    if (B.isFalse(L))
      return false;
    return S.modelValue(L) == LBool::True;
  };
  // Antisymmetry + totality.
  for (int I = 0; I < N; ++I)
    for (int J = 0; J < N; ++J)
      if (I != J)
        EXPECT_NE(Before(I, J), Before(J, I));
  // Transitivity.
  for (int I = 0; I < N; ++I)
    for (int J = 0; J < N; ++J)
      for (int K = 0; K < N; ++K) {
        if (I == J || J == K || I == K)
          continue;
        if (Before(I, J) && Before(J, K))
          EXPECT_TRUE(Before(I, K));
      }
}

TEST_P(OrderProperty, ForcedPairsHold) {
  auto [Mode, N] = GetParam();
  if (N < 3)
    return;
  Solver S;
  CnfBuilder B(S);
  std::vector<std::pair<int, int>> Forced = {{2, 1}, {1, 0}};
  MemoryOrder M(B, makeAccesses(N, 1), Mode, false, Forced);
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  auto True = [&](Lit L) {
    return B.isTrue(L) || (!B.isFalse(L) && S.modelValue(L) == LBool::True);
  };
  EXPECT_TRUE(True(M.before(2, 1)));
  EXPECT_TRUE(True(M.before(1, 0)));
  EXPECT_TRUE(True(M.before(2, 0))); // transitive consequence
}

TEST_P(OrderProperty, CyclicForcingIsUnsat) {
  auto [Mode, N] = GetParam();
  if (N < 2)
    return;
  Solver S;
  CnfBuilder B(S);
  MemoryOrder M(B, makeAccesses(N, 1), Mode, false, {});
  // Force a 2-cycle dynamically; the solver must refuse.
  bool Ok = S.addClause(M.before(0, 1));
  Ok = S.addClause(M.before(1, 0)) && Ok;
  EXPECT_TRUE(!Ok || S.solve() == SolveResult::Unsat);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OrderProperty,
    ::testing::Values(std::make_pair(OrderMode::Pairwise, 3),
                      std::make_pair(OrderMode::Pairwise, 5),
                      std::make_pair(OrderMode::Pairwise, 7),
                      std::make_pair(OrderMode::Rank, 3),
                      std::make_pair(OrderMode::Rank, 5),
                      std::make_pair(OrderMode::Rank, 7)));

TEST(Order, SerialModeGroupsAtomic) {
  // Two groups of two accesses each: the groups order as units.
  Solver S;
  CnfBuilder B(S);
  std::vector<AccessInfo> Accs(4);
  Accs[0] = {0, 0, 0};
  Accs[1] = {0, 1, 0};
  Accs[2] = {1, 0, 1};
  Accs[3] = {1, 1, 1};
  MemoryOrder M(B, Accs, OrderMode::Pairwise, /*SerialOps=*/true, {});
  ASSERT_EQ(S.solve(), SolveResult::Sat);
  // Intra-group: program order constants.
  EXPECT_TRUE(B.isTrue(M.before(0, 1)));
  EXPECT_TRUE(B.isTrue(M.before(2, 3)));
  // Inter-group literals are shared: 0<2 iff 1<3.
  auto True = [&](Lit L) {
    return B.isTrue(L) || (!B.isFalse(L) && S.modelValue(L) == LBool::True);
  };
  EXPECT_EQ(True(M.before(0, 2)), True(M.before(1, 3)));
  EXPECT_EQ(True(M.before(0, 3)), True(M.before(1, 2)));
}

} // namespace
