//===--- TransTests.cpp - flattener and range analysis tests ---------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lowering.h"
#include "trans/Flattener.h"
#include "trans/RangeAnalysis.h"

#include "gtest/gtest.h"

using namespace checkfence;
using namespace checkfence::trans;
using lsl::Value;

namespace {

/// Compiles a source whose function "t" is flattened as a single thread.
FlatProgram flatten(const std::string &Source, const LoopBounds &Bounds = {},
                    bool ExpectOk = true) {
  frontend::DiagEngine Diags;
  lsl::Program Prog;
  EXPECT_TRUE(frontend::compileC(Source, {}, Prog, Diags)) << Diags.str();
  FlatProgram Flat;
  Flattener F(Prog, Flat, Bounds);
  bool Ok = F.flattenThread("t", 0);
  EXPECT_EQ(Ok, ExpectOk) << F.error();
  return Flat;
}

TEST(Flattener, StraightLineCode) {
  FlatProgram P = flatten("int x; void t(void) { x = 1; x = 2; }");
  EXPECT_EQ(P.numStores(), 2);
  EXPECT_EQ(P.numLoads(), 0);
  EXPECT_TRUE(P.BoundMarks.empty());
  // Both stores execute unconditionally: constant-true guards.
  for (const FlatEvent &E : P.Events)
    EXPECT_TRUE(P.isConstInt(E.Guard, 1));
}

TEST(Flattener, BranchGuardsAreConditional) {
  FlatProgram P = flatten(
      "int x; int y; void t(void) { if (x == 0) y = 1; else y = 2; }");
  ASSERT_EQ(P.numStores(), 2);
  int Conditional = 0;
  for (const FlatEvent &E : P.Events)
    if (E.isStore() && !P.isConstInt(E.Guard, 1))
      ++Conditional;
  EXPECT_EQ(Conditional, 2);
}

TEST(Flattener, LoopUnrollsToBound) {
  const char *Src =
      "int n; int s; void t(void) { while (s < n) { s = s + 1; } }";
  FlatProgram P1 = flatten(Src);
  ASSERT_EQ(P1.BoundMarks.size(), 1u);
  LoopBounds Bounds{{P1.BoundMarks[0].LoopKey, 3}};
  FlatProgram P3 = flatten(Src, Bounds);
  // Each extra iteration adds loads and a store.
  EXPECT_GT(P3.Events.size(), P1.Events.size());
  EXPECT_EQ(P3.BoundMarks.size(), 1u);
  EXPECT_EQ(P3.BoundMarks[0].LoopKey, P1.BoundMarks[0].LoopKey)
      << "loop keys must be stable across re-flattening";
}

TEST(Flattener, CallsAreInlined) {
  FlatProgram P = flatten("int x;\n"
                          "int get(void) { return x; }\n"
                          "void set(int v) { x = v; }\n"
                          "void t(void) { set(get() + 1); }");
  EXPECT_EQ(P.numLoads(), 1);
  EXPECT_EQ(P.numStores(), 1);
}

TEST(Flattener, AtomicBlockTagsEvents) {
  FlatProgram P = flatten(
      "int x; void t(void) { atomic { int v = x; x = v + 1; } x = 5; }");
  ASSERT_EQ(P.Events.size(), 3u);
  EXPECT_EQ(P.Events[0].AtomicId, P.Events[1].AtomicId);
  EXPECT_GE(P.Events[0].AtomicId, 0);
  EXPECT_EQ(P.Events[2].AtomicId, -1);
}

TEST(Flattener, AllocsGetDistinctAddresses) {
  FlatProgram P = flatten("typedef struct n { int v; } n_t;\n"
                          "extern n_t *new_node();\n"
                          "n_t *a; n_t *b;\n"
                          "void t(void) { a = new_node(); b = new_node(); }");
  // The two stored values are distinct constant pointers.
  ASSERT_EQ(P.numStores(), 2);
  std::vector<Value> Stored;
  for (const FlatEvent &E : P.Events) {
    Value V;
    ASSERT_TRUE(P.isConst(E.Data, &V));
    Stored.push_back(V);
  }
  EXPECT_TRUE(Stored[0].isPtr());
  EXPECT_TRUE(Stored[1].isPtr());
  EXPECT_NE(Stored[0], Stored[1]);
}

TEST(Flattener, ConstantFoldingThroughFields) {
  // Address arithmetic on constants folds to constant pointers.
  FlatProgram P = flatten("typedef struct n { int a; int b; } n_t;\n"
                          "n_t g;\n"
                          "void t(void) { g.b = 7; }");
  ASSERT_EQ(P.Events.size(), 1u);
  Value Addr;
  ASSERT_TRUE(P.isConst(P.Events[0].Addr, &Addr));
  EXPECT_EQ(Addr, Value::pointer({0, 1}));
}

TEST(Flattener, FenceEventsCarryKind) {
  FlatProgram P = flatten("extern void fence(char *k);\n"
                          "int x;\n"
                          "void t(void) { x = 1; fence(\"store-store\"); "
                          "x = 2; }");
  ASSERT_EQ(P.Events.size(), 3u);
  EXPECT_EQ(P.Events[1].K, FlatEvent::Kind::Fence);
  EXPECT_EQ(P.Events[1].FenceK, lsl::FenceKind::StoreStore);
}

TEST(Flattener, DeadCodeEmitsNoEvents) {
  FlatProgram P = flatten(
      "int x; void t(void) { if (0) x = 1; }");
  EXPECT_EQ(P.numStores(), 0);
}

//===----------------------------------------------------------------------===//
// Range analysis
//===----------------------------------------------------------------------===//

TEST(RangeAnalysis, ConstantsAreSingletons) {
  FlatProgram P = flatten("int x; void t(void) { x = 3; }");
  RangeInfo R = analyzeRanges(P);
  const ValueSet &S = R.DefSets[P.Events[0].Data];
  EXPECT_TRUE(S.isSingleton());
  EXPECT_EQ(*S.Values.begin(), Value::integer(3));
}

TEST(RangeAnalysis, LoadSetsIncludeStoredValuesAndUndef) {
  FlatProgram P = flatten(
      "int x; int y; void t(void) { x = 3; y = x; }");
  RangeInfo R = analyzeRanges(P);
  const FlatEvent *Load = nullptr;
  for (const FlatEvent &E : P.Events)
    if (E.isLoad())
      Load = &E;
  ASSERT_NE(Load, nullptr);
  const ValueSet &S = R.DefSets[Load->Data];
  EXPECT_TRUE(S.Values.count(Value::integer(3)));
  EXPECT_TRUE(S.mayBeUndef());
}

TEST(RangeAnalysis, CounterLoopStaysBounded) {
  // The Sec. 3.4 tagging: one increment instance adds at most one value.
  FlatProgram P =
      flatten("int c; void t(void) { c = 0; c = c + 1; c = c + 1; }");
  RangeInfo R = analyzeRanges(P);
  for (const FlatEvent &E : P.Events) {
    if (!E.isStore())
      continue;
    const ValueSet &S = R.DefSets[E.Data];
    EXPECT_FALSE(S.Top);
    // Flow-insensitive: cell holds {0,1,2}, but never more (two
    // expanding instances bound the traversal count).
    EXPECT_LE(S.Values.size(), 3u);
  }
}

TEST(RangeAnalysis, AliasPruningSeparatesDisjointCells) {
  FlatProgram P = flatten("int x; int y;\n"
                          "void t(void) { x = 1; y = 2; }");
  RangeInfo R = analyzeRanges(P);
  ASSERT_EQ(R.Cells.size(), 2u);
  ASSERT_EQ(P.Events.size(), 2u);
  EXPECT_NE(R.EventCells[0], R.EventCells[1]);
  EXPECT_EQ(R.EventCells[0].size(), 1u);
}

TEST(RangeAnalysis, PointerUniverseCoversFields) {
  FlatProgram P = flatten("typedef struct n { int a; int b; } n_t;\n"
                          "extern n_t *new_node();\n"
                          "void t(void) { n_t *p = new_node(); p->a = 1; "
                          "p->b = 2; }");
  RangeInfo R = analyzeRanges(P);
  // Universe holds the node base and both field addresses.
  EXPECT_GE(R.PointerUniverse.size(), 3u);
  EXPECT_EQ(R.Cells.size(), 2u); // only the fields are dereferenced
}

TEST(RangeAnalysis, ArrayIndexingEnumeratesCells) {
  FlatProgram P = flatten("int buf[4]; int i;\n"
                          "void t(void) { i = 0; buf[i] = 1; buf[i + 1] = 2; "
                          "}");
  RangeInfo R = analyzeRanges(P);
  // Cells: i itself plus the two indexed slots (the flow-insensitive index
  // set {0,1} makes each store's candidate set cover both slots).
  EXPECT_GE(R.Cells.size(), 3u);
}

TEST(RangeAnalysis, IntWidthsFollowValues) {
  FlatProgram P = flatten("int x; void t(void) { x = 200; }");
  RangeInfo R = analyzeRanges(P);
  EXPECT_GE(R.GlobalIntBits, 8);
  FlatProgram P2 = flatten("int x; void t(void) { x = 1; }");
  RangeInfo R2 = analyzeRanges(P2);
  EXPECT_LE(R2.GlobalIntBits, 2);
}

} // namespace
