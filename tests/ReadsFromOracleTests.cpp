//===--- ReadsFromOracleTests.cpp - polynomial oracle vs. brute force --------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// Differential testing of the reads-from oracle: on every oracle-eligible
// point of the relaxation lattice its observation set must equal the
// AxiomaticEnumerator's brute-force order enumeration (and under sc the
// ReferenceExecutor's interleaving enumeration), across hand-written
// litmus shapes and randomly generated programs. The two checkers share
// no code beyond the FlatProgram representation and the model trait
// table. Also covered: lattice monotonicity of the oracle's observation
// sets, the typed skip reasons both oracles now report (and their
// byte-identical messages), the FastOracle eligibility markers in the
// model registry and the public catalog, and the explore runner's skip
// accounting being independent of which oracle answered.
//
//===----------------------------------------------------------------------===//

#include "checkfence/checkfence.h"

#include "checker/Encoder.h"
#include "checker/SpecMiner.h"
#include "explore/Differential.h"
#include "frontend/Lowering.h"
#include "harness/TestSpec.h"
#include "memmodel/AxiomaticEnumerator.h"
#include "memmodel/ReadsFromOracle.h"
#include "memmodel/ReferenceExecutor.h"

#include "gtest/gtest.h"

#include <random>
#include <sstream>

using namespace checkfence;
using namespace checkfence::checker;
using namespace checkfence::harness;

namespace {

/// The lattice points the fast oracle claims to cover: sc, tso, pso, and
/// the unnamed po: descriptors between them.
std::vector<memmodel::ModelParams> eligibleModels() {
  std::vector<memmodel::ModelParams> Out;
  for (const memmodel::ModelParams &M : memmodel::latticeModels())
    if (memmodel::readsFromEligible(M))
      Out.push_back(M);
  return Out;
}

std::string show(const std::set<memmodel::RefObservation> &S) {
  std::ostringstream SS;
  for (const memmodel::RefObservation &O : S) {
    SS << (O.Error ? "E(" : " (");
    for (size_t I = 0; I < O.Values.size(); ++I)
      SS << (I ? "," : "") << O.Values[I].str();
    SS << ") ";
  }
  return SS.str();
}

bool isSubset(const std::set<memmodel::RefObservation> &A,
              const std::set<memmodel::RefObservation> &B) {
  return std::includes(B.begin(), B.end(), A.begin(), A.end());
}

struct ThreadOps {
  std::string Proc;
  int NumArgs = 0;
};

/// Compiles \p Source, builds one thread per \p Ops entry, and checks the
/// reads-from oracle against the order enumerator on every eligible
/// lattice point (and against the ReferenceExecutor under sc). Skips must
/// agree too - same typed reason, same message. Returns the number of
/// points where observation sets were actually compared.
int compareOracles(const std::string &Source,
                   const std::vector<ThreadOps> &Ops,
                   const std::string &Label) {
  frontend::DiagEngine Diags;
  lsl::Program Prog;
  EXPECT_TRUE(frontend::compileC(Source, {}, Prog, Diags))
      << Label << ":\n" << Source << "\n" << Diags.str();

  TestSpec Spec;
  Spec.Name = "rf-oracle";
  for (const ThreadOps &Op : Ops)
    Spec.Threads.push_back({OpSpec{Op.Proc, Op.NumArgs, false, false}});
  std::vector<std::string> Threads = buildTestThreads(Prog, Spec);

  // Per-point sets that compared cleanly, for the monotonicity check.
  std::vector<std::pair<memmodel::ModelParams,
                        std::set<memmodel::RefObservation>>>
      CleanSets;

  int Compared = 0;
  for (const memmodel::ModelParams &Model : eligibleModels()) {
    ProblemConfig Cfg;
    Cfg.Model = Model;
    EncodedProblem Prob(Prog, Threads, {}, Cfg);
    if (!Prob.ok()) {
      ADD_FAILURE() << Label << ": " << Prob.error();
      return Compared;
    }

    memmodel::ReadsFromOptions RO;
    RO.Model = Model;
    memmodel::ReadsFromResult RF =
        memmodel::checkReadsFrom(Prob.flat(), RO);
    memmodel::AxiomaticOptions AO;
    AO.Model = Model;
    memmodel::AxiomaticResult Slow =
        memmodel::enumerateAxiomatic(Prob.flat(), AO);

    // Fragment/skip agreement is part of the contract: the explore
    // report must not depend on which oracle ran.
    EXPECT_EQ(RF.Ok, Slow.Ok)
        << Label << " on " << memmodel::modelName(Model)
        << ": rf='" << RF.Error << "' enum='" << Slow.Error << "'\n"
        << Source;
    if (!RF.Ok || !Slow.Ok) {
      if (!RF.Ok && !Slow.Ok) {
        EXPECT_EQ(RF.Reason, Slow.Reason) << Label;
        EXPECT_EQ(RF.Error, Slow.Error) << Label;
      }
      continue;
    }

    EXPECT_EQ(RF.Observations, Slow.Observations)
        << Label << " disagrees on " << memmodel::modelName(Model)
        << "\n  reads-from: " << show(RF.Observations)
        << "\n  enumerator: " << show(Slow.Observations) << "\n"
        << Source;

    if (Model == memmodel::ModelParams::sc()) {
      std::set<memmodel::RefObservation> Interleaved =
          memmodel::enumerateExecutions(Prob.flat(), memmodel::RefOptions{});
      EXPECT_EQ(RF.Observations, Interleaved)
          << Label << " disagrees with the reference executor under sc"
          << "\n  reads-from: " << show(RF.Observations)
          << "\n  reference:  " << show(Interleaved) << "\n"
          << Source;
    }

    CleanSets.emplace_back(Model, RF.Observations);
    ++Compared;
  }

  // Lattice monotonicity of the oracle's own verdicts: every execution
  // allowed under a stronger point is allowed under a weaker one.
  for (size_t A = 0; A < CleanSets.size(); ++A)
    for (size_t B = 0; B < CleanSets.size(); ++B) {
      if (A == B || !memmodel::atLeastAsStrong(CleanSets[A].first,
                                               CleanSets[B].first))
        continue;
      EXPECT_TRUE(isSubset(CleanSets[A].second, CleanSets[B].second))
          << Label << ": " << memmodel::modelName(CleanSets[A].first)
          << " not-subset-of " << memmodel::modelName(CleanSets[B].first)
          << "\n  " << show(CleanSets[A].second) << "\n  "
          << show(CleanSets[B].second) << "\n" << Source;
    }
  return Compared;
}

#define LITMUS_HEADER                                                        \
  "extern void observe(int v);\n"                                           \
  "extern void fence(char *type);\n"

//===----------------------------------------------------------------------===//
// Hand-written litmus shapes.
//===----------------------------------------------------------------------===//

TEST(ReadsFromOracle, StoreBuffering) {
  compareOracles(LITMUS_HEADER R"(
int x; int y;
void init_op(void) { x = 0; y = 0; }
void t1_op(void) { x = 1; observe(y); }
void t2_op(void) { y = 1; observe(x); }
)",
                 {{"t1_op"}, {"t2_op"}}, "sb");
}

TEST(ReadsFromOracle, StoreBufferingFenced) {
  compareOracles(LITMUS_HEADER R"(
int x; int y;
void init_op(void) { x = 0; y = 0; }
void t1_op(void) { x = 1; fence("store-load"); observe(y); }
void t2_op(void) { y = 1; fence("store-load"); observe(x); }
)",
                 {{"t1_op"}, {"t2_op"}}, "sb+fence");
}

TEST(ReadsFromOracle, MessagePassingFenced) {
  compareOracles(LITMUS_HEADER R"(
int data; int flag;
void init_op(void) { data = 0; flag = 0; }
void producer_op(void) { data = 1; fence("store-store"); flag = 1; }
void consumer_op(void) { int f = flag; fence("load-load"); int d = data;
                         observe(f); observe(d); }
)",
                 {{"producer_op"}, {"consumer_op"}}, "mp+fences");
}

TEST(ReadsFromOracle, Iriw) {
  compareOracles(LITMUS_HEADER R"(
int x; int y;
void init_op(void) { x = 0; y = 0; }
void w1_op(void) { x = 1; }
void w2_op(void) { y = 1; }
void r1_op(void) { int a = x; fence("load-load"); int b = y;
                   observe(a); observe(b); }
void r2_op(void) { int c = y; fence("load-load"); int d = x;
                   observe(c); observe(d); }
)",
                 {{"w1_op"}, {"w2_op"}, {"r1_op"}, {"r2_op"}}, "iriw");
}

TEST(ReadsFromOracle, CoherenceAndForwarding) {
  // Same-address stores plus a reader: exercises the coherence
  // disjunctions and the store-forwarding visibility rule.
  compareOracles(LITMUS_HEADER R"(
int x;
void init_op(void) { x = 0; }
void writer_op(void) { x = 1; x = 2; observe(x); }
void reader_op(void) { int a = x; int b = x; observe(a); observe(b); }
)",
                 {{"writer_op"}, {"reader_op"}}, "coherence+fwd");
}

TEST(ReadsFromOracle, AtomicIncrements) {
  // Atomic blocks become contracted supernodes in the constraint graph.
  compareOracles(LITMUS_HEADER R"(
int x;
void init_op(void) { x = 0; }
void incr_op(void) {
  int t;
  atomic { t = x; x = t + 1; }
  observe(t);
}
)",
                 {{"incr_op"}, {"incr_op"}}, "atomic-incr");
}

TEST(ReadsFromOracle, SymbolicArguments) {
  // Choice values are enumerated outside the per-assignment search; the
  // budget spans all of them.
  compareOracles(LITMUS_HEADER R"(
int x; int y;
void init_op(void) { x = 0; y = 0; }
void w_op(int v) { x = v; y = v + 1; }
void r_op(void) { int a = y; int b = x; observe(a); observe(b); }
)",
                 {{"w_op", 1}, {"r_op"}}, "choice-args");
}

TEST(ReadsFromOracle, DependentData) {
  // Store data depending on loads chains value evaluation across the
  // reads-from assignment (and can go cyclic - then both sides skip).
  compareOracles(LITMUS_HEADER R"(
int x; int y;
void init_op(void) { x = 0; y = 0; }
void t1_op(void) { x = 1; }
void t2_op(void) { int r = x; y = r; }
void t3_op(void) { int s = y; observe(s); }
)",
                 {{"t1_op"}, {"t2_op"}, {"t3_op"}}, "dep-data");
}

TEST(ReadsFromOracle, ThreeThreadsMixed) {
  compareOracles(LITMUS_HEADER R"(
int x; int y; int z;
void init_op(void) { x = 0; y = 0; z = 0; }
void t1_op(void) { x = 1; fence("store-store"); y = 1; }
void t2_op(void) { int a = y; z = 2; observe(a); }
void t3_op(void) { int b = z; int c = x; observe(b); observe(c); }
)",
                 {{"t1_op"}, {"t2_op"}, {"t3_op"}}, "3t-mixed");
}

//===----------------------------------------------------------------------===//
// Randomly generated programs (property sweep), same shape family as the
// AxiomaticOracleTests generator: branch-free threads over shared
// variables with constant/argument/loaded stores, random fences, atomic
// read-modify-write blocks, and observations.
//===----------------------------------------------------------------------===//

struct GenProgram {
  std::string Source;
  std::vector<ThreadOps> Ops;
};

GenProgram generate(unsigned Seed) {
  std::mt19937 Rng(Seed);
  auto Pick = [&](int N) { return static_cast<int>(Rng() % N); };
  const char *Vars[] = {"x", "y", "z"};
  const char *Fences[] = {"load-load", "load-store", "store-load",
                          "store-store"};

  int NumVars = 2 + Pick(2);
  int NumThreads = 2 + Pick(2);
  int Budget = 7;

  std::ostringstream Src;
  Src << LITMUS_HEADER;
  for (int V = 0; V < NumVars; ++V)
    Src << "int " << Vars[V] << ";\n";
  Src << "void init_op(void) {";
  for (int V = 0; V < NumVars; ++V)
    Src << " " << Vars[V] << " = 0;";
  Src << " }\n";

  GenProgram Out;
  int RegNum = 0;
  for (int T = 0; T < NumThreads; ++T) {
    int Len = 1 + Pick(3);
    bool UsesArg = false;
    std::ostringstream Body;
    for (int S = 0; S < Len && Budget > 0; ++S) {
      switch (Pick(6)) {
      case 0: // store constant
        Body << "  " << Vars[Pick(NumVars)] << " = " << 1 + Pick(2)
             << ";\n";
        Budget -= 1;
        break;
      case 1: // store the symbolic argument
        Body << "  " << Vars[Pick(NumVars)] << " = v;\n";
        UsesArg = true;
        Budget -= 1;
        break;
      case 2: { // load and observe
        int R = RegNum++;
        Body << "  int r" << R << " = " << Vars[Pick(NumVars)]
             << "; observe(r" << R << ");\n";
        Budget -= 1;
        break;
      }
      case 3: { // load and republish (dependent store data)
        int R = RegNum++;
        Body << "  int r" << R << " = " << Vars[Pick(NumVars)] << "; "
             << Vars[Pick(NumVars)] << " = r" << R << ";\n";
        Budget -= 2;
        break;
      }
      case 4: // fence
        Body << "  fence(\"" << Fences[Pick(4)] << "\");\n";
        break;
      case 5: { // atomic read-modify-write
        int R = RegNum++;
        const char *V = Vars[Pick(NumVars)];
        Body << "  int r" << R << ";\n  atomic { r" << R << " = " << V
             << "; " << V << " = r" << R << " + 1; }\n  observe(r" << R
             << ");\n";
        Budget -= 2;
        break;
      }
      }
    }
    std::string Proc = "t" + std::to_string(T) + "_op";
    Src << "void " << Proc << "(" << (UsesArg ? "int v" : "void")
        << ") {\n"
        << Body.str() << "}\n";
    Out.Ops.push_back({Proc, UsesArg ? 1 : 0});
  }
  Out.Source = Src.str();
  return Out;
}

class RandomRf : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomRf, OracleMatchesEnumerator) {
  GenProgram G = generate(GetParam());
  int Compared = compareOracles(G.Source, G.Ops,
                                "seed " + std::to_string(GetParam()));
  // At the very least sc must have been comparable: no cyclic value
  // dependency can arise where <M embeds all of <p.
  EXPECT_GE(Compared, 1) << G.Source;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomRf, ::testing::Range(0u, 64u));

//===----------------------------------------------------------------------===//
// Typed skip reasons: both oracles classify identically and render the
// exact same message - the explore skip strings depend on it.
//===----------------------------------------------------------------------===//

struct CompiledLitmus {
  lsl::Program Prog;
  std::vector<std::string> Threads;
};

CompiledLitmus compileLitmus(const std::string &Source,
                             const std::vector<ThreadOps> &Ops) {
  CompiledLitmus Out;
  frontend::DiagEngine Diags;
  EXPECT_TRUE(frontend::compileC(Source, {}, Out.Prog, Diags))
      << Diags.str();
  TestSpec Spec;
  Spec.Name = "skip";
  for (const ThreadOps &Op : Ops)
    Spec.Threads.push_back({OpSpec{Op.Proc, Op.NumArgs, false, false}});
  Out.Threads = buildTestThreads(Out.Prog, Spec);
  return Out;
}

const char *GuardDependsSource = LITMUS_HEADER R"(
int x; int y;
void init_op(void) { x = 0; y = 0; }
void t0_op(void) { int r = x; if (r) { y = 1; } }
void t1_op(void) { x = 1; observe(y); }
)";

TEST(OracleSkips, GuardDependsOnLoad) {
  CompiledLitmus L =
      compileLitmus(GuardDependsSource, {{"t0_op"}, {"t1_op"}});
  ProblemConfig Cfg;
  Cfg.Model = memmodel::ModelParams::sc();
  EncodedProblem Prob(L.Prog, L.Threads, {}, Cfg);
  ASSERT_TRUE(Prob.ok()) << Prob.error();

  memmodel::ReadsFromResult RF =
      memmodel::checkReadsFrom(Prob.flat(), {});
  EXPECT_FALSE(RF.Ok);
  EXPECT_EQ(RF.Reason, memmodel::OracleSkip::GuardDependsOnLoad);
  EXPECT_EQ(RF.Error, "guard depends on a load");

  memmodel::AxiomaticResult Slow =
      memmodel::enumerateAxiomatic(Prob.flat(), {});
  EXPECT_FALSE(Slow.Ok);
  EXPECT_EQ(Slow.Reason, memmodel::OracleSkip::GuardDependsOnLoad);
  EXPECT_EQ(Slow.Error, RF.Error);
  EXPECT_EQ(memmodel::oracleSkipMessage(Slow.Reason), Slow.Error);
}

TEST(OracleSkips, BudgetExceededSharesOneMessage) {
  CompiledLitmus L = compileLitmus(LITMUS_HEADER R"(
int x; int y;
void init_op(void) { x = 0; y = 0; }
void t1_op(void) { x = 1; observe(y); }
void t2_op(void) { y = 1; observe(x); }
)",
                                   {{"t1_op"}, {"t2_op"}});
  ProblemConfig Cfg;
  Cfg.Model = memmodel::ModelParams::sc();
  EncodedProblem Prob(L.Prog, L.Threads, {}, Cfg);
  ASSERT_TRUE(Prob.ok()) << Prob.error();

  memmodel::ReadsFromOptions RO;
  RO.MaxAssignments = 1;
  memmodel::ReadsFromResult RF = memmodel::checkReadsFrom(Prob.flat(), RO);
  EXPECT_FALSE(RF.Ok);
  EXPECT_EQ(RF.Reason, memmodel::OracleSkip::BudgetExceeded);
  EXPECT_EQ(RF.Error, "search budget exceeded");

  memmodel::AxiomaticOptions AO;
  AO.MaxOrders = 1;
  memmodel::AxiomaticResult Slow =
      memmodel::enumerateAxiomatic(Prob.flat(), AO);
  EXPECT_FALSE(Slow.Ok);
  EXPECT_EQ(Slow.Reason, memmodel::OracleSkip::BudgetExceeded);
  EXPECT_EQ(Slow.Error, RF.Error);
}

//===----------------------------------------------------------------------===//
// Eligibility bookkeeping: the registry records readsFromEligible() and
// the public catalog surfaces it.
//===----------------------------------------------------------------------===//

TEST(OracleEligibility, RegistryMatchesPredicate) {
  for (const memmodel::NamedModel &N : memmodel::namedModels())
    EXPECT_EQ(N.FastOracle, memmodel::readsFromEligible(N.Params))
        << N.Name;

  auto Eligible = [](const char *Name) {
    auto M = memmodel::modelFromName(Name);
    EXPECT_TRUE(M.has_value()) << Name;
    return memmodel::readsFromEligible(*M);
  };
  EXPECT_TRUE(Eligible("sc"));
  EXPECT_TRUE(Eligible("tso"));
  EXPECT_TRUE(Eligible("pso"));
  EXPECT_FALSE(Eligible("serial"));
  EXPECT_FALSE(Eligible("rmo"));
  EXPECT_FALSE(Eligible("relaxed"));
  // Unnamed descriptors between sc and pso are covered; dropping
  // load-load or multi-copy atomicity leaves the set.
  EXPECT_TRUE(Eligible("po:ll+ls+sl"));
  EXPECT_FALSE(Eligible("po:ls+ss,fwd"));
  EXPECT_FALSE(Eligible("po:all,nomca"));
}

TEST(OracleEligibility, CatalogSurfacesFastOracle) {
  for (const ModelDesc &M : listModels()) {
    auto P = memmodel::modelFromName(M.Name);
    ASSERT_TRUE(P.has_value()) << M.Name;
    EXPECT_EQ(M.FastOracle, memmodel::readsFromEligible(*P)) << M.Name;
  }
}

//===----------------------------------------------------------------------===//
// Explore integration: skip accounting is oracle-agnostic, and fast-mode
// outcomes match enumerator-mode outcomes scenario by scenario.
//===----------------------------------------------------------------------===//

explore::Scenario litmusScenario(const std::string &Source, int Index) {
  explore::Scenario S;
  S.K = explore::Scenario::Kind::Litmus;
  S.Index = Index;
  S.Source = Source;
  return S;
}

TEST(ExploreOracle, SkipStringsMatchTypedReasons) {
  Verifier V;
  explore::DiffOptions Opts;
  Opts.Models = {memmodel::ModelParams::sc(), memmodel::ModelParams::tso(),
                 memmodel::ModelParams::relaxed()};

  explore::Scenario S = litmusScenario(GuardDependsSource, 0);
  std::string Expected = std::string(memmodel::oracleSkipMessage(
      memmodel::OracleSkip::GuardDependsOnLoad));

  for (bool Fast : {true, false}) {
    Opts.UseFastOracle = Fast;
    explore::ScenarioOutcome Out =
        explore::DifferentialRunner(V, Opts).run(S);
    EXPECT_TRUE(Out.Divergences.empty());
    ASSERT_EQ(Out.Skips.size(), 3u) << "fast=" << Fast;
    EXPECT_EQ(Out.Skips[0], "sc: " + Expected);
    EXPECT_EQ(Out.Skips[1], "tso: " + Expected);
    EXPECT_EQ(Out.Skips[2], "relaxed: " + Expected);
  }
}

TEST(ExploreOracle, FastModeMatchesEnumeratorMode) {
  Verifier V;
  explore::DiffOptions Fast;
  Fast.Models = {memmodel::ModelParams::sc(), memmodel::ModelParams::tso(),
                 memmodel::ModelParams::pso()};
  // Sample every scenario: the enumerator double-checks each fast-oracle
  // answer inline on top of the outcome comparison below.
  Fast.UseFastOracle = true;
  Fast.EnumeratorSamplePeriod = 1;
  explore::DiffOptions Slow = Fast;
  Slow.UseFastOracle = false;

  for (unsigned Seed = 0; Seed < 12; ++Seed) {
    GenProgram G = generate(Seed);
    explore::Scenario S =
        litmusScenario(G.Source, static_cast<int>(Seed));
    explore::ScenarioOutcome A =
        explore::DifferentialRunner(V, Fast).run(S);
    explore::ScenarioOutcome B =
        explore::DifferentialRunner(V, Slow).run(S);
    EXPECT_TRUE(A.Divergences.empty()) << G.Source;
    EXPECT_TRUE(B.Divergences.empty()) << G.Source;
    EXPECT_EQ(A.Ran, B.Ran) << G.Source;
    EXPECT_EQ(A.Skips, B.Skips) << G.Source;
    EXPECT_EQ(A.Summary, B.Summary) << G.Source;
  }
}

} // namespace
