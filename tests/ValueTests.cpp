//===--- ValueTests.cpp - LSL value and operator semantics tests ------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// evalPrimOp is the single definition of LSL operator semantics (range
// analysis, reference executor, and the table encoder all call it), so
// its algebraic properties are pinned here, including the Kleene logic
// for the guard algebra and the undefined-value rules.
//
//===----------------------------------------------------------------------===//

#include "lsl/Value.h"

#include "gtest/gtest.h"

using namespace checkfence;
using namespace checkfence::lsl;

namespace {

Value U() { return Value::undef(); }
Value I(int64_t N) { return Value::integer(N); }
Value P(std::vector<uint32_t> Path, bool Mark = false) {
  return Value::pointer(std::move(Path), Mark);
}

Value ev(PrimOpKind Op, const Value &A) { return evalPrimOp(Op, {A}, 0); }
Value ev(PrimOpKind Op, const Value &A, const Value &B) {
  return evalPrimOp(Op, {A, B}, 0);
}

TEST(Value, BasicKinds) {
  EXPECT_TRUE(U().isUndef());
  EXPECT_TRUE(I(3).isInt());
  EXPECT_TRUE(P({1, 2}).isPtr());
  EXPECT_EQ(I(3).intValue(), 3);
  EXPECT_EQ(P({1, 2}).ptrPath(), (std::vector<uint32_t>{1, 2}));
}

TEST(Value, Truthiness) {
  EXPECT_FALSE(I(0).isTruthy());
  EXPECT_TRUE(I(1).isTruthy());
  EXPECT_TRUE(I(-5).isTruthy());
  EXPECT_TRUE(P({0}).isTruthy()); // pointers are non-null by construction
}

TEST(Value, StructuralEqualityIncludesMark) {
  EXPECT_EQ(P({1, 2}), P({1, 2}));
  EXPECT_NE(P({1, 2}), P({1, 3}));
  EXPECT_NE(P({1, 2}), P({1, 2}, true));
  EXPECT_EQ(P({1, 2}, true), P({1, 2}, true));
  EXPECT_NE(Value(I(0)), Value(P({0})));
}

TEST(Value, OrderingIsTotal) {
  std::vector<Value> Vals = {U(),          I(-1),        I(0),
                             I(7),         P({0}),       P({0, 1}),
                             P({0}, true), P({1})};
  for (size_t A = 0; A < Vals.size(); ++A)
    for (size_t B = 0; B < Vals.size(); ++B) {
      bool Less = Vals[A] < Vals[B];
      bool Greater = Vals[B] < Vals[A];
      if (A == B)
        EXPECT_FALSE(Less || Greater);
      else
        EXPECT_NE(Less, Greater) << A << " vs " << B;
    }
}

TEST(Value, Printing) {
  EXPECT_EQ(U().str(), "undef");
  EXPECT_EQ(I(42).str(), "42");
  EXPECT_EQ(P({0, 1, 2}).str(), "[0 1 2]");
  EXPECT_EQ(P({3}, true).str(), "[3]&1");
}

//===----------------------------------------------------------------------===//
// Arithmetic and comparisons
//===----------------------------------------------------------------------===//

TEST(PrimOp, IntegerArithmetic) {
  EXPECT_EQ(ev(PrimOpKind::Add, I(3), I(4)), I(7));
  EXPECT_EQ(ev(PrimOpKind::Sub, I(3), I(4)), I(-1));
  EXPECT_EQ(ev(PrimOpKind::Mul, I(3), I(4)), I(12));
  EXPECT_EQ(ev(PrimOpKind::Div, I(12), I(4)), I(3));
  EXPECT_EQ(ev(PrimOpKind::Mod, I(13), I(4)), I(1));
}

TEST(PrimOp, DivisionByZeroIsUndefined) {
  EXPECT_TRUE(ev(PrimOpKind::Div, I(1), I(0)).isUndef());
  EXPECT_TRUE(ev(PrimOpKind::Mod, I(1), I(0)).isUndef());
}

TEST(PrimOp, UndefPoisonsArithmetic) {
  EXPECT_TRUE(ev(PrimOpKind::Add, U(), I(1)).isUndef());
  EXPECT_TRUE(ev(PrimOpKind::Add, P({0}), I(1)).isUndef());
}

TEST(PrimOp, Comparisons) {
  EXPECT_EQ(ev(PrimOpKind::Lt, I(1), I(2)), I(1));
  EXPECT_EQ(ev(PrimOpKind::Ge, I(1), I(2)), I(0));
  EXPECT_EQ(ev(PrimOpKind::Le, I(2), I(2)), I(1));
}

TEST(PrimOp, EqualityAcrossKinds) {
  // A pointer never equals an integer (C code compares next == 0).
  EXPECT_EQ(ev(PrimOpKind::Eq, P({5}), I(0)), I(0));
  EXPECT_EQ(ev(PrimOpKind::Ne, P({5}), I(0)), I(1));
  EXPECT_EQ(ev(PrimOpKind::Eq, P({5}), P({5})), I(1));
  EXPECT_EQ(ev(PrimOpKind::Eq, P({5}), P({5}, true)), I(0));
  EXPECT_TRUE(ev(PrimOpKind::Eq, U(), I(0)).isUndef());
}

//===----------------------------------------------------------------------===//
// Kleene logic (the guard algebra depends on these identities)
//===----------------------------------------------------------------------===//

TEST(PrimOp, KleeneAnd) {
  EXPECT_EQ(ev(PrimOpKind::LAnd, I(0), U()), I(0));
  EXPECT_EQ(ev(PrimOpKind::LAnd, U(), I(0)), I(0));
  EXPECT_TRUE(ev(PrimOpKind::LAnd, I(1), U()).isUndef());
  EXPECT_EQ(ev(PrimOpKind::LAnd, I(1), I(1)), I(1));
  EXPECT_EQ(ev(PrimOpKind::LAnd, I(1), I(0)), I(0));
}

TEST(PrimOp, KleeneOr) {
  EXPECT_EQ(ev(PrimOpKind::LOr, I(1), U()), I(1));
  EXPECT_EQ(ev(PrimOpKind::LOr, U(), I(1)), I(1));
  EXPECT_TRUE(ev(PrimOpKind::LOr, I(0), U()).isUndef());
  EXPECT_EQ(ev(PrimOpKind::LOr, I(0), I(0)), I(0));
}

TEST(PrimOp, LNotIsStrict) {
  EXPECT_TRUE(ev(PrimOpKind::LNot, U()).isUndef());
  EXPECT_EQ(ev(PrimOpKind::LNot, I(0)), I(1));
  EXPECT_EQ(ev(PrimOpKind::LNot, I(3)), I(0));
  EXPECT_EQ(ev(PrimOpKind::LNot, P({1})), I(0)); // pointers are truthy
}

//===----------------------------------------------------------------------===//
// Pointer structure
//===----------------------------------------------------------------------===//

TEST(PrimOp, PtrFieldAppendsOffset) {
  EXPECT_EQ(evalPrimOp(PrimOpKind::PtrField, {P({4})}, 2), P({4, 2}));
  EXPECT_EQ(evalPrimOp(PrimOpKind::PtrField, {P({4, 1})}, 0), P({4, 1, 0}));
  EXPECT_TRUE(evalPrimOp(PrimOpKind::PtrField, {I(0)}, 1).isUndef());
}

TEST(PrimOp, PtrIndexUsesDynamicOffset) {
  EXPECT_EQ(ev(PrimOpKind::PtrIndex, P({4}), I(3)), P({4, 3}));
  EXPECT_TRUE(ev(PrimOpKind::PtrIndex, P({4}), I(-1)).isUndef());
  EXPECT_TRUE(ev(PrimOpKind::PtrIndex, P({4}), U()).isUndef());
}

TEST(PrimOp, MarkBitRoundTrip) {
  Value Marked = ev(PrimOpKind::PtrMark, P({7}), I(1));
  EXPECT_EQ(Marked, P({7}, true));
  EXPECT_EQ(ev(PrimOpKind::PtrGetMark, Marked), I(1));
  EXPECT_EQ(ev(PrimOpKind::PtrGetMark, P({7})), I(0));
  EXPECT_EQ(ev(PrimOpKind::PtrClearMark, Marked), P({7}));
  // Marking preserves the path; dereference goes through the clear form.
  EXPECT_EQ(ev(PrimOpKind::PtrClearMark, Marked).ptrPath(),
            P({7}).ptrPath());
}

TEST(PrimOp, SelectSemantics) {
  EXPECT_EQ(evalPrimOp(PrimOpKind::Select, {I(1), I(7), I(9)}, 0), I(7));
  EXPECT_EQ(evalPrimOp(PrimOpKind::Select, {I(0), I(7), I(9)}, 0), I(9));
  EXPECT_TRUE(
      evalPrimOp(PrimOpKind::Select, {U(), I(7), I(9)}, 0).isUndef());
  // The untaken branch may be garbage without affecting the result.
  EXPECT_EQ(evalPrimOp(PrimOpKind::Select, {I(1), I(7), U()}, 0), I(7));
}

//===----------------------------------------------------------------------===//
// Fence kinds
//===----------------------------------------------------------------------===//

TEST(Fences, ParseAndPrintRoundTrip) {
  for (FenceKind K : {FenceKind::LoadLoad, FenceKind::LoadStore,
                      FenceKind::StoreLoad, FenceKind::StoreStore}) {
    FenceKind Out;
    ASSERT_TRUE(parseFenceKind(fenceKindName(K), Out));
    EXPECT_EQ(Out, K);
  }
  FenceKind Out;
  EXPECT_FALSE(parseFenceKind("full", Out));
}

/// Property sweep: binary integer operators agree with native arithmetic
/// over a grid of small operands.
class IntOpProperty : public ::testing::TestWithParam<PrimOpKind> {};

TEST_P(IntOpProperty, MatchesNative) {
  PrimOpKind Op = GetParam();
  for (int64_t A = -3; A <= 5; ++A) {
    for (int64_t B = -3; B <= 5; ++B) {
      Value R = ev(Op, I(A), I(B));
      int64_t Expected = 0;
      bool Defined = true;
      switch (Op) {
      case PrimOpKind::Add:
        Expected = A + B;
        break;
      case PrimOpKind::Sub:
        Expected = A - B;
        break;
      case PrimOpKind::Mul:
        Expected = A * B;
        break;
      case PrimOpKind::Div:
        Defined = B != 0;
        Expected = Defined ? A / B : 0;
        break;
      case PrimOpKind::BitAnd:
        Expected = A & B;
        break;
      case PrimOpKind::BitOr:
        Expected = A | B;
        break;
      case PrimOpKind::BitXor:
        Expected = A ^ B;
        break;
      case PrimOpKind::Lt:
        Expected = A < B;
        break;
      case PrimOpKind::Gt:
        Expected = A > B;
        break;
      default:
        return;
      }
      if (!Defined) {
        EXPECT_TRUE(R.isUndef());
      } else {
        ASSERT_TRUE(R.isInt());
        EXPECT_EQ(R.intValue(), Expected) << A << " op " << B;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IntOpProperty,
                         ::testing::Values(PrimOpKind::Add, PrimOpKind::Sub,
                                           PrimOpKind::Mul, PrimOpKind::Div,
                                           PrimOpKind::BitAnd,
                                           PrimOpKind::BitOr,
                                           PrimOpKind::BitXor,
                                           PrimOpKind::Lt, PrimOpKind::Gt));

} // namespace
