//===--- StackTests.cpp - the Treiber stack extension ------------------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// The Treiber stack is this repository's extension beyond the paper's
// Table 1: a sixth data type exercising the same pipeline. It exhibits
// two of the Sec. 4.3 failure classes (incomplete initialization and
// dependent-load reordering), verifies unfenced on TSO like the paper's
// algorithms, and its fences are rediscovered by the synthesizer.
//
//===----------------------------------------------------------------------===//

#include "harness/FenceSynth.h"
#include "impls/Impls.h"

#include "gtest/gtest.h"

#include <algorithm>

using namespace checkfence;
using namespace checkfence::checker;
using namespace checkfence::harness;

namespace {

constexpr auto SC = memmodel::ModelParams::sc();
constexpr auto TSO = memmodel::ModelParams::tso();
constexpr auto PSO = memmodel::ModelParams::pso();
constexpr auto RLX = memmodel::ModelParams::relaxed();

CheckResult run(const std::string &Test, memmodel::ModelParams Model,
                bool Strip, const std::string &SpecSource = "") {
  RunOptions O;
  O.Check.Model = Model;
  O.StripFences = Strip;
  O.SpecSource = SpecSource;
  return runTest(impls::sourceFor("treiber"), testByName(Test), O);
}

struct GridCase {
  const char *Test;
  memmodel::ModelParams Model;
  bool StripFences;
  CheckStatus Expected;
};

class StackGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(StackGrid, Verdict) {
  GridCase C = GetParam();
  CheckResult R = run(C.Test, C.Model, C.StripFences);
  EXPECT_EQ(R.Status, C.Expected)
      << C.Test << ": " << R.Message
      << (R.Counterexample ? "\n" + R.Counterexample->str() : "");
}

INSTANTIATE_TEST_SUITE_P(
    Treiber, StackGrid,
    ::testing::Values(
        // The fenced stack is correct everywhere.
        GridCase{"U0", RLX, false, CheckStatus::Pass},
        GridCase{"U1", RLX, false, CheckStatus::Pass},
        GridCase{"Ui2", RLX, false, CheckStatus::Pass},
        GridCase{"Upc2", PSO, false, CheckStatus::Pass},
        // Unfenced: correct on SC and TSO (Sec. 4.2's "automatic fences"
        // observation applies to the stack too)...
        GridCase{"U0", SC, true, CheckStatus::Pass},
        GridCase{"U1", SC, true, CheckStatus::Pass},
        GridCase{"U0", TSO, true, CheckStatus::Pass},
        GridCase{"Ui2", TSO, true, CheckStatus::Pass},
        // ...broken once store-store order is relaxed.
        GridCase{"U0", PSO, true, CheckStatus::Fail},
        GridCase{"U0", RLX, true, CheckStatus::Fail},
        GridCase{"U1", RLX, true, CheckStatus::Fail}));

TEST(Stack, SequentialSemantics) {
  // Mining U0 under Serial gives exactly the atomic-interleaving
  // observations: push(v) then pop->v, or pop->EMPTY first.
  CheckResult R = run("U0", SC, false);
  ASSERT_TRUE(R.passed()) << R.Message;
  // Observation vector is (push arg, pop result): {(0,0),(0,2),(1,1),(1,2)}.
  EXPECT_EQ(R.Spec.size(), 4u);
  for (const Observation &O : R.Spec) {
    ASSERT_EQ(O.Values.size(), 2u);
    ASSERT_TRUE(O.Values[0].isInt());
    ASSERT_TRUE(O.Values[1].isInt());
    int64_t Pushed = O.Values[0].intValue();
    int64_t Popped = O.Values[1].intValue();
    EXPECT_TRUE(Popped == Pushed || Popped == 2)
        << "pop returned " << Popped << " after push " << Pushed;
  }
}

TEST(Stack, LifoOrderIsEnforced) {
  // Upc2 pushes two values and pops twice concurrently; the mined spec
  // must only contain LIFO-consistent pop sequences. A FIFO pop order of
  // a fully-completed push pair would be a queue, not a stack: if both
  // pops return pushed values from a serial execution where both pushes
  // happened first, they must come out reversed.
  CheckResult R = run("Upc2", SC, false);
  ASSERT_TRUE(R.passed()) << R.Message;
  ASSERT_FALSE(R.Spec.empty());
  // Sanity: the spec contains an execution where both pops see values
  // (not EMPTY) - and none where the same single push is popped twice.
  bool BothPopped = false;
  for (const Observation &O : R.Spec) {
    ASSERT_EQ(O.Values.size(), 4u); // u-arg, u-arg, o-ret, o-ret
    int64_t P1 = O.Values[2].intValue(), P2 = O.Values[3].intValue();
    if (P1 != 2 && P2 != 2)
      BothPopped = true;
  }
  EXPECT_TRUE(BothPopped);
}

TEST(Stack, RefsetMiningAgrees) {
  // The sequential reference stack mines the same specification (the
  // "refset" mode of Fig. 11a) and so produces the same verdict.
  CheckResult Direct = run("U1", RLX, false);
  CheckResult Ref = run("U1", RLX, false, impls::referenceFor("stack"));
  ASSERT_TRUE(Direct.passed()) << Direct.Message;
  ASSERT_TRUE(Ref.passed()) << Ref.Message;
  EXPECT_EQ(Direct.Spec, Ref.Spec);
}

TEST(Stack, UnfencedFailureIsIncompleteInitialization) {
  // The Relaxed counterexample of the unfenced stack shows the Sec. 4.3
  // "incomplete initialization" class: a pop returns a value never
  // pushed (the field read passed the publication CAS), which surfaces
  // as an undefined-value error or a wrong value in the observation.
  CheckResult R = run("U0", RLX, true);
  ASSERT_EQ(R.Status, CheckStatus::Fail);
  ASSERT_TRUE(R.Counterexample.has_value());
  const Trace &T = *R.Counterexample;
  bool Undefined = !T.Errors.empty();
  for (const lsl::Value &V : T.Obs.Values)
    Undefined = Undefined || V.isUndef();
  EXPECT_TRUE(Undefined || T.Obs.Error) << T.str();
}

TEST(Stack, SynthesizerRediscoversTheFences) {
  SynthOptions O;
  O.Check.Model = RLX;
  O.MinLine = 1;
  for (char C : impls::preludeSource())
    O.MinLine += C == '\n';
  SynthResult R = synthesizeFences(impls::sourceFor("treiber"),
                                   {testByName("U0")}, O);
  ASSERT_TRUE(R.Success) << R.Message;
  // The shipped placement: one store-store (publication), one load-load
  // (dependent loads); U0 needs at least the publication fence.
  ASSERT_GE(R.Fences.size(), 1u);
  EXPECT_TRUE(std::any_of(R.Fences.begin(), R.Fences.end(),
                          [](const FencePlacement &P) {
                            return P.Kind == lsl::FenceKind::StoreStore;
                          }));
}

} // namespace
