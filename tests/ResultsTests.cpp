//===--- ResultsTests.cpp - the paper's Sec. 4 findings as tests ------------===//
//
// Part of the CheckFence reproduction (PLDI'07).
//
// Each test pins one qualitative claim from the evaluation section:
// which implementations pass/fail on which model, which bugs are found,
// and which failure classes appear. These are the repository's regression
// contract with the paper.
//
//===----------------------------------------------------------------------===//

#include "harness/Catalog.h"
#include "impls/Impls.h"

#include "gtest/gtest.h"

using namespace checkfence;
using namespace checkfence::checker;
using namespace checkfence::harness;

namespace {

RunOptions model(memmodel::ModelParams M) {
  RunOptions O;
  O.Check.Model = M;
  return O;
}

constexpr auto SC = memmodel::ModelParams::sc();
constexpr auto TSO = memmodel::ModelParams::tso();
constexpr auto PSO = memmodel::ModelParams::pso();
constexpr auto RLX = memmodel::ModelParams::relaxed();

struct GridCase {
  const char *Impl;
  const char *Test;
  memmodel::ModelParams Model;
  bool StripFences;
  CheckStatus Expected;
};

class ResultGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(ResultGrid, MatchesPaper) {
  GridCase C = GetParam();
  RunOptions O = model(C.Model);
  O.StripFences = C.StripFences;
  CheckResult R = runTest(impls::sourceFor(C.Impl), testByName(C.Test), O);
  EXPECT_EQ(R.Status, C.Expected)
      << C.Impl << " on " << C.Test << ": " << R.Message
      << (R.Counterexample ? "\n" + R.Counterexample->str() : "");
}

INSTANTIATE_TEST_SUITE_P(
    Queues, ResultGrid,
    ::testing::Values(
        // The fenced implementations are correct on Relaxed...
        GridCase{"msn", "T0", RLX, false, CheckStatus::Pass},
        GridCase{"msn", "Tpc2", RLX, false, CheckStatus::Pass},
        GridCase{"ms2", "T0", RLX, false, CheckStatus::Pass},
        GridCase{"ms2", "Ti2", RLX, false, CheckStatus::Pass},
        GridCase{"ms2", "T1", RLX, false, CheckStatus::Pass},
        // ...the unfenced ones are not (Sec. 4.2)...
        GridCase{"msn", "T0", RLX, true, CheckStatus::Fail},
        GridCase{"ms2", "T0", RLX, true, CheckStatus::Fail},
        // ...but are fine under sequential consistency.
        GridCase{"msn", "T0", SC, true, CheckStatus::Pass},
        GridCase{"msn", "Tpc2", SC, true, CheckStatus::Pass},
        GridCase{"ms2", "T1", SC, true, CheckStatus::Pass}));

INSTANTIATE_TEST_SUITE_P(
    Sets, ResultGrid,
    ::testing::Values(
        GridCase{"lazylist", "Sac", RLX, false, CheckStatus::Pass},
        GridCase{"lazylist", "Sar", RLX, false, CheckStatus::Pass},
        GridCase{"lazylist", "Sar", RLX, true, CheckStatus::Fail},
        GridCase{"lazylist", "Sar", SC, true, CheckStatus::Pass},
        GridCase{"harris", "Sac", RLX, false, CheckStatus::Pass},
        GridCase{"harris", "Sar", RLX, false, CheckStatus::Pass},
        GridCase{"harris", "Sar", SC, true, CheckStatus::Pass}));

INSTANTIATE_TEST_SUITE_P(
    Deques, ResultGrid,
    ::testing::Values(
        // snark misbehaves even under SC: the first known bug, on D0.
        GridCase{"snark", "D0", SC, false, CheckStatus::Fail},
        // Da (two pops per side after two pushes) behaves under SC and
        // TSO/PSO, but snark carries no fences (the published algorithm
        // assumed SC), so Relaxed's unordered dependent loads produce a
        // counterexample - the same unfenced-failure pattern as the
        // stripped queue/set implementations. (An earlier notation-
        // parser bug dropped Da's init pushes, making the test run on
        // an empty deque where Relaxed trivially passed.)
        GridCase{"snark", "Da", SC, false, CheckStatus::Pass},
        GridCase{"snark", "Da", RLX, false, CheckStatus::Fail}));

// Sec. 4.2: "An interesting observation is that the implementations we
// studied required only load-load and store-store fences. On some
// architectures (such as Sun TSO ...), these fences are automatic and the
// algorithm therefore works without inserting any fences." TSO preserves
// exactly load-load and store-store (and load-store) order, so the
// *unfenced* implementations must verify on TSO; PSO relaxes store-store,
// so the publication-fence failures reappear there.
INSTANTIATE_TEST_SUITE_P(
    TsoPso, ResultGrid,
    ::testing::Values(
        GridCase{"msn", "T0", TSO, true, CheckStatus::Pass},
        GridCase{"msn", "Tpc2", TSO, true, CheckStatus::Pass},
        GridCase{"ms2", "T1", TSO, true, CheckStatus::Pass},
        GridCase{"lazylist", "Sar", TSO, true, CheckStatus::Pass},
        GridCase{"harris", "Sac", TSO, true, CheckStatus::Pass},
        GridCase{"msn", "T0", PSO, true, CheckStatus::Fail},
        GridCase{"ms2", "T0", PSO, true, CheckStatus::Fail},
        // The placed fences restore correctness on PSO as well.
        GridCase{"msn", "T0", PSO, false, CheckStatus::Pass},
        GridCase{"ms2", "Ti2", PSO, false, CheckStatus::Pass},
        GridCase{"harris", "Sac", PSO, false, CheckStatus::Pass}));

TEST(Results, LazylistInitBugIsSequential) {
  RunOptions O = model(SC);
  O.Defines = {"LAZYLIST_INIT_BUG"};
  CheckResult R =
      runTest(impls::sourceFor("lazylist"), testByName("Sac"), O);
  ASSERT_EQ(R.Status, CheckStatus::SequentialBug) << R.Message;
  ASSERT_TRUE(R.Counterexample.has_value());
  // The trace blames an undefined-value use (the uninitialized field).
  bool Undef = false;
  for (const std::string &E : R.Counterexample->Errors)
    if (E.find("undefined") != std::string::npos)
      Undef = true;
  EXPECT_TRUE(Undef);
}

TEST(Results, SnarkBugObservationNotSerial) {
  RunOptions O = model(SC);
  CheckResult R = runTest(impls::sourceFor("snark"), testByName("D0"), O);
  ASSERT_EQ(R.Status, CheckStatus::Fail);
  ASSERT_TRUE(R.Counterexample.has_value());
  // The counterexample's observation must not be in the mined spec.
  EXPECT_EQ(R.Spec.count(R.Counterexample->Obs), 0u);
}

TEST(Results, MsnUnfencedFailureIsIncompleteInitialization) {
  // Sec. 4.3, class 1: stripping only the first store-store fence (which
  // publishes the node fields) lets the dequeuer read an uninitialized
  // field.
  std::string Source = impls::sourceFor("msn");
  // Find the first fence (the publication fence in enqueue).
  size_t Pos = Source.find("fence(\"store-store\")");
  ASSERT_NE(Pos, std::string::npos);
  int Line = 1;
  for (size_t I = 0; I < Pos; ++I)
    if (Source[I] == '\n')
      ++Line;
  RunOptions O = model(RLX);
  O.StripFenceLines = {Line};
  CheckResult R = runTest(Source, testByName("T0"), O);
  EXPECT_EQ(R.Status, CheckStatus::Fail) << R.Message;
}

TEST(Results, SpecificationSizesMatchSemantics) {
  // T0 on any correct queue yields exactly 4 observations
  // (A in {0,1}) x (X in {A, EMPTY}).
  RunOptions O = model(RLX);
  CheckResult R = runTest(impls::sourceFor("msn"), testByName("T0"), O);
  ASSERT_EQ(R.Status, CheckStatus::Pass);
  EXPECT_EQ(R.Spec.size(), 4u);

  // Both queue implementations and the reference mine identical
  // specifications for Tpc2.
  CheckResult A = runTest(impls::sourceFor("msn"), testByName("Tpc2"), O);
  CheckResult B = runTest(impls::sourceFor("ms2"), testByName("Tpc2"), O);
  CheckResult C =
      runTest(impls::referenceFor("queue"), testByName("Tpc2"), model(SC));
  ASSERT_EQ(A.Status, CheckStatus::Pass);
  ASSERT_EQ(B.Status, CheckStatus::Pass);
  ASSERT_EQ(C.Status, CheckStatus::Pass);
  EXPECT_EQ(A.Spec, B.Spec);
  EXPECT_EQ(A.Spec, C.Spec);
}

TEST(Results, RefsetMiningGivesSameVerdict) {
  RunOptions O = model(RLX);
  O.SpecSource = impls::referenceFor("queue");
  CheckResult R = runTest(impls::sourceFor("msn"), testByName("T0"), O);
  EXPECT_EQ(R.Status, CheckStatus::Pass) << R.Message;

  RunOptions OBad = O;
  OBad.StripFences = true;
  CheckResult R2 = runTest(impls::sourceFor("msn"), testByName("T0"), OBad);
  EXPECT_EQ(R2.Status, CheckStatus::Fail);
}

TEST(Results, PrimedTestsRestrictRetries) {
  // S1 uses primed (no-retry) operations: it must encode without growing
  // any bounds (restricted loops are pinned to one iteration).
  RunOptions O = model(RLX);
  CheckResult R = runTest(impls::sourceFor("harris"), testByName("S1"), O);
  EXPECT_EQ(R.Status, CheckStatus::Pass) << R.Message;
  EXPECT_LE(R.Stats.BoundIterations, 2);
}

} // namespace
